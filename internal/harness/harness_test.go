package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func coreMonopath() core.Config { return core.ConfigMonopath() }

// Small, fast options for tests: two contrasting benchmarks, short runs.
func testOpts() Options {
	return Options{TargetInsts: 60_000, Benchmarks: []string{"go", "vortex"}}
}

func TestRunMatrixShape(t *testing.T) {
	mat, err := runMatrix(testOpts(), fig8Configs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.Benchmarks) != 2 || len(mat.Configs) != 2 {
		t.Fatalf("matrix shape %dx%d", len(mat.Benchmarks), len(mat.Configs))
	}
	for _, b := range mat.Benchmarks {
		for _, c := range mat.Configs {
			cell := mat.Cell(b, c)
			if cell == nil || cell.IPC <= 0 {
				t.Errorf("missing or empty cell %s/%s", b, c)
			}
		}
	}
	if mat.Cell("nope", "monopath") != nil || mat.IPC("nope", "x") != 0 {
		t.Error("missing-cell accessors should be nil/0")
	}
	hm := mat.HarmonicMean("monopath")
	if hm <= 0 || hm > 8 {
		t.Errorf("harmonic mean %f out of range", hm)
	}
}

func TestRunMatrixUnknownBenchmark(t *testing.T) {
	_, err := runMatrix(Options{Benchmarks: []string{"nonesuch"}}, fig8Configs()[:1])
	if err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var goRow, vortexRow *Table1Row
	for i := range res.Rows {
		switch res.Rows[i].Benchmark {
		case "go":
			goRow = &res.Rows[i]
		case "vortex":
			vortexRow = &res.Rows[i]
		}
	}
	if goRow == nil || vortexRow == nil {
		t.Fatal("missing benchmark rows")
	}
	if goRow.MispredictRate <= vortexRow.MispredictRate {
		t.Error("go must mispredict more than vortex (Table 1 ordering)")
	}
	if goRow.Insts < 30_000 {
		t.Errorf("go committed only %d instructions", goRow.Insts)
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "go", "vortex", "average", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure8ShapesAndRender(t *testing.T) {
	res, err := Figure8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	for _, b := range m.Benchmarks {
		mono := m.IPC(b, "monopath")
		oracle := m.IPC(b, "oracle")
		orcCE := m.IPC(b, "gshare/oracle")
		if oracle <= mono {
			t.Errorf("%s: oracle BP (%f) must beat monopath (%f)", b, oracle, mono)
		}
		if orcCE <= mono {
			t.Errorf("%s: SEE with oracle CE (%f) must beat monopath (%f)", b, orcCE, mono)
		}
		if orcCE >= oracle {
			t.Errorf("%s: SEE+oracle CE (%f) cannot beat perfect prediction (%f)", b, orcCE, oracle)
		}
	}
	// Dual path with oracle CE captures part, not all, of SEE/oracle-CE.
	goSEE := m.IPC("go", "gshare/oracle")
	goDual := m.IPC("go", "gshare/oracle/dual")
	goMono := m.IPC("go", "monopath")
	if goDual <= goMono || goDual > goSEE+0.01 {
		t.Errorf("go dual-path oracle %f outside (mono %f, SEE %f]", goDual, goMono, goSEE)
	}
	out := res.Render()
	for _, want := range []string{"Figure 8", "PVN", "hmean", "dual-path fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSweepRender(t *testing.T) {
	s := &SweepResult{
		Title: "T", XLabel: "x",
		Configs: []string{"a"},
		Points:  []SweepPoint{{Label: "p", X: 1, IPC: map[string]float64{"a": 2.5}}},
	}
	out := s.Render()
	if !strings.Contains(out, "2.500") || !strings.Contains(out, "T") {
		t.Errorf("sweep render: %q", out)
	}
}

func TestAblationJRSWidthFavoursOneBitPVN(t *testing.T) {
	res, err := AblationJRSWidth(Options{TargetInsts: 120_000, Benchmarks: []string{"go"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	oneBit := res.Variants[0]
	fourBit := res.Variants[1]
	// The paper's rationale: 1-bit resetting counters achieve much higher
	// PVN than the saturating-threshold 4-bit version.
	if oneBit.MeanPVN <= fourBit.MeanPVN {
		t.Errorf("1-bit PVN %.3f should exceed 4-bit PVN %.3f", oneBit.MeanPVN, fourBit.MeanPVN)
	}
	if !strings.Contains(res.Render(), "JRS") {
		t.Error("render")
	}
}

func TestAblationSpecHistoryImprovesAccuracy(t *testing.T) {
	res, err := AblationSpecHistory(Options{TargetInsts: 120_000, Benchmarks: []string{"gcc"}})
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Variants[0]
	nonspec := res.Variants[1]
	// Paper Sec. 4.2: speculative update improves prediction accuracy.
	if spec.MeanMispredict >= nonspec.MeanMispredict {
		t.Errorf("speculative history mispredict %.4f should be below commit-time %.4f",
			spec.MeanMispredict, nonspec.MeanMispredict)
	}
}

func TestPathUtilization(t *testing.T) {
	hists, err := PathUtilization(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hists {
		if h.AvgPaths < 1 {
			t.Errorf("%s: avg paths %.2f < 1", h.Benchmark, h.AvgPaths)
		}
		if h.AtMost[8] < h.AtMost[3] || h.AtMost[3] < h.AtMost[1] {
			t.Errorf("%s: cumulative path fractions must be monotone", h.Benchmark)
		}
	}
}

func TestFigure10SmallWindowHurtsMost(t *testing.T) {
	// Paper Sec. 5.3.2: below 256 entries "the performance of some
	// benchmarks starts to suffer significantly from the reduced
	// scheduling freedom". Verify windows shrink IPC monotonically for
	// the oracle configuration and that per-benchmark data is recorded.
	res, err := Figure10(Options{TargetInsts: 60_000, Benchmarks: []string{"compress", "vortex"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("window sweep too short")
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.IPC["oracle"] >= last.IPC["oracle"] {
		t.Errorf("oracle IPC should grow with window: %.3f -> %.3f",
			first.IPC["oracle"], last.IPC["oracle"])
	}
	if first.PerBench["oracle"]["compress"] <= 0 {
		t.Error("per-benchmark sweep data missing")
	}
}

func TestFigure12DepthMonotonic(t *testing.T) {
	res, err := Figure12(Options{TargetInsts: 60_000, Benchmarks: []string{"gcc"}})
	if err != nil {
		t.Fatal(err)
	}
	// Monopath IPC must fall monotonically as the pipeline deepens.
	prev := res.Points[0].IPC["gshare/monopath"]
	for _, p := range res.Points[1:] {
		cur := p.IPC["gshare/monopath"]
		if cur >= prev {
			t.Errorf("monopath IPC should fall with depth: %v", res.Points)
			break
		}
		prev = cur
	}
}

func TestReplicatesAverageDeterministically(t *testing.T) {
	opts := Options{TargetInsts: 40_000, Benchmarks: []string{"vortex"}, Replicates: 3}
	run := func() float64 {
		mat, err := runMatrix(opts, []NamedConfig{{Name: "m", Cfg: coreMonopath()}})
		if err != nil {
			t.Fatal(err)
		}
		return mat.IPC("vortex", "m")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replicate averaging nondeterministic: %v vs %v", a, b)
	}
	single, err := runMatrix(Options{TargetInsts: 40_000, Benchmarks: []string{"vortex"}},
		[]NamedConfig{{Name: "m", Cfg: coreMonopath()}})
	if err != nil {
		t.Fatal(err)
	}
	if single.IPC("vortex", "m") == a {
		t.Log("replicate mean equals single seed (possible but unlikely)")
	}
	if a <= 0 {
		t.Error("averaged IPC must be positive")
	}
}

// TestHeadlineShapes pins the paper's headline results end to end on the
// full suite at reduced scale: SEE beats monopath in aggregate, go gains
// the most, m88ksim has the lowest PVN, and the oracle hierarchy holds.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation")
	}
	res, err := Figure8(Options{TargetInsts: 250_000})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	mono := m.HarmonicMean("monopath")
	see := m.HarmonicMean("gshare/JRS")
	orcCE := m.HarmonicMean("gshare/oracle")
	oracle := m.HarmonicMean("oracle")
	if !(mono < see && see < orcCE && orcCE < oracle) {
		t.Errorf("hierarchy violated: mono %.3f < SEE %.3f < orcCE %.3f < oracle %.3f",
			mono, see, orcCE, oracle)
	}
	// The oracle-CE machine recovers a large fraction of the oracle-BP
	// headroom (paper: about half).
	if frac := (orcCE - mono) / (oracle - mono); frac < 0.25 || frac > 0.75 {
		t.Errorf("oracle-CE recovers %.0f%% of the oracle gap, want ~half", 100*frac)
	}
	var maxGain float64
	maxBench := ""
	var pvns []float64
	var m88PVN float64
	for _, e := range res.Extras {
		if e.SpeedupJRS > maxGain {
			maxGain, maxBench = e.SpeedupJRS, e.Benchmark
		}
		pvns = append(pvns, e.PVN)
		if e.Benchmark == "m88ksim" {
			m88PVN = e.PVN
		}
	}
	if maxBench != "go" {
		t.Errorf("largest SEE gain on %s (%.1f%%), paper says go", maxBench, 100*maxGain)
	}
	// m88ksim must sit in the bottom two PVNs (the paper's anomaly; at
	// reduced scale the exact rank order among the low-PVN pair can flip).
	below := 0
	for _, p := range pvns {
		if p < m88PVN {
			below++
		}
	}
	if below > 1 {
		t.Errorf("m88ksim PVN %.1f%% not among the two lowest (paper's anomaly)", 100*m88PVN)
	}
}
