package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// traceSpec is a stand-in for a polychar-synthesized workload: a
// job-scoped spec that is NOT in any registry.
func traceSpec(insts uint64) workload.Spec {
	return workload.Spec{
		Name: "trace-0123456789ab", Seed: 42, TargetInsts: insts,
		Branches: []workload.BranchSpec{
			{Kind: workload.KindBernoulli, Bias: 0.7},
			{Kind: workload.KindLoop, Trip: 8},
		},
		BlockLen: 4, Chains: 2,
	}
}

// TestOptionsExtraResolvesJobScopedWorkloads: an Extra spec is runnable
// both by explicit name and as part of the default (unrestricted) suite,
// without touching the global registry.
func TestOptionsExtraResolvesJobScopedWorkloads(t *testing.T) {
	opts := Options{
		TargetInsts: 40_000,
		Benchmarks:  []string{"vortex", "trace-0123456789ab"},
		Extra:       []workload.Benchmark{{Spec: traceSpec(0)}},
	}
	mat, err := runMatrix(opts, fig8Configs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v", mat.Benchmarks)
	}
	cell := mat.Cell("trace-0123456789ab", mat.Configs[0])
	if cell == nil || cell.IPC <= 0 {
		t.Fatal("job-scoped workload did not run")
	}
	// The name must stay job-scoped: invisible without Extra.
	if _, err := runMatrix(Options{Benchmarks: []string{"trace-0123456789ab"}}, fig8Configs()[:1]); err == nil {
		t.Fatal("Extra spec leaked into the global registry")
	}
}

// TestOptionsExtraJoinsDefaultSuite: with no Benchmarks restriction the
// suite is Table 1 plus the Extra specs.
func TestOptionsExtraJoinsDefaultSuite(t *testing.T) {
	opts := Options{
		TargetInsts: 20_000,
		Extra:       []workload.Benchmark{{Spec: traceSpec(0)}},
	}
	benches, _, err := opts.suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != len(workload.Names())+1 {
		t.Fatalf("suite has %d entries, want %d", len(benches), len(workload.Names())+1)
	}
	last := benches[len(benches)-1]
	if last.Spec.Name != "trace-0123456789ab" {
		t.Fatalf("Extra spec not appended: %s", last.Spec.Name)
	}
	if last.Spec.TargetInsts != 20_000 {
		t.Fatalf("Options.TargetInsts override not applied to Extra: %d", last.Spec.TargetInsts)
	}
}

// TestCharTableDeterministicAcrossParallelism: fig8-char renders
// byte-identically under any shard count, like every other experiment.
func TestCharTableDeterministicAcrossParallelism(t *testing.T) {
	opts := Options{
		TargetInsts: 30_000,
		Benchmarks:  []string{"vortex", "go", "ptrchase"},
	}
	seq := opts
	seq.Parallelism = 1
	par := opts
	par.Parallelism = 8
	a, err := CharTable(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CharTable(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("fig8-char differs across parallelism:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row.Class == "" || row.Digest == "" {
			t.Fatalf("incomplete row %+v", row)
		}
		if row.Placement < 0 || row.Placement > 1 {
			t.Fatalf("placement %v out of [0,1]", row.Placement)
		}
	}
}

// TestCharTableIsRegistered: the experiment registry resolves fig8-char
// and its render carries the placement spectrum legend.
func TestCharTableIsRegistered(t *testing.T) {
	res, err := RunExperiment("fig8-char", Options{
		TargetInsts: 20_000,
		Benchmarks:  []string{"vortex"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 8 placement") || !strings.Contains(out, "vortex") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestCharTableCoversExtendedAndExtra: the default fig8-char table spans
// Table 1, the extended families, and any job-scoped Extra specs.
func TestCharTableCoversExtendedAndExtra(t *testing.T) {
	res, err := CharTable(Options{
		TargetInsts: 15_000,
		Extra:       []workload.Benchmark{{Spec: traceSpec(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.Names()) + len(workload.Extended(15_000)) + 1
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d (suite + extended + extra)", len(res.Rows), want)
	}
	names := make(map[string]bool, len(res.Rows))
	for _, r := range res.Rows {
		names[r.Name] = true
	}
	for _, n := range []string{"compress", "ptrchase", "interp-dispatch", "branchless", "m88ksim-phased", "trace-0123456789ab"} {
		if !names[n] {
			t.Fatalf("fig8-char table missing %s (have %v)", n, res.Rows)
		}
	}
}
