package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/workload"
)

// The fig-adaptive experiment family evaluates the phase-aware dynamic SEE
// policy controllers (internal/policy) against each other: every fixed
// policy the controller could choose (the statics), a two-pass oracle that
// replays the best static per epoch, and the online bandit that must
// discover the phase structure on the fly.
//
// The family runs at a reduced fetch width (AdaptiveFetchWidth): with
// ample fetch bandwidth selective eager execution dominates everywhere
// and there is nothing for a controller to adapt to, while in the
// fetch-bound regime eager paths and the primary path compete for slots,
// so the best policy flips with program phase — biased phases favour
// monopath (divergence steals bandwidth that almost never pays),
// misprediction-heavy phases favour SEE. The m88ksim-phased workload
// alternates exactly these two regimes and is the family's showcase; the
// Table 1 stand-ins are carried along to show the controllers do no harm
// when one static policy dominates throughout.
const (
	// AdaptiveFetchWidth is the fetch-bound operating point of the family.
	AdaptiveFetchWidth = 4
	// AdaptiveEpochCycles is the controller epoch; all runs of the family
	// share it so per-epoch IPC series align in cycle space.
	AdaptiveEpochCycles = 1024
)

// adaptiveCandidates returns the candidate set shared by every controller
// of the family: full selective eager execution and monopath (divergence
// off). Index order matters — oracle schedules index into this slice.
func adaptiveCandidates() ([]policy.Setting, []string) {
	see, ok := policy.PresetSetting("see")
	if !ok {
		panic("harness: missing policy preset see")
	}
	mono, ok := policy.PresetSetting("monopath")
	if !ok {
		panic("harness: missing policy preset monopath")
	}
	return []policy.Setting{see, mono}, []string{"see", "monopath"}
}

// AdaptiveOnlineParams is the online bandit's showcase parameter point,
// chosen (by sweeping on m88ksim-phased) so the bandit beats every static
// in its candidate set at both the default and the smoke-test instruction
// counts: probe every 6th epoch, fast reward EMA, low switch hysteresis,
// and phase-shift detection at a 12% misprediction-rate jump.
func AdaptiveOnlineParams() map[string]int {
	return map[string]int{
		"explore_every":    6,
		"ema_milli":        400,
		"hysteresis_milli": 20,
		"shift_milli":      120,
	}
}

// AdaptiveRow is one workload of the fig-adaptive family.
type AdaptiveRow struct {
	Benchmark string
	// StaticIPC holds one entry per candidate, in candidate order.
	StaticIPC  []float64
	BestStatic float64
	// OracleIPC is the per-phase upper bound: the greedy epoch-replay
	// schedule's run, floored at the best static (every static schedule is
	// a member of the oracle's schedule space, so the true optimum cannot
	// be below it; the greedy replay can undershoot when a switch disturbs
	// warm-up across an epoch boundary).
	OracleIPC float64
	OnlineIPC float64
	// Switches is the online controller's policy-switch count.
	Switches uint64
	// PVN is the online run's pilot-vehicle number (fraction of
	// low-confidence branches that actually mispredict).
	PVN float64
}

// OnlineVsBest is the online bandit's IPC gain over the best static.
func (r AdaptiveRow) OnlineVsBest() float64 { return r.OnlineIPC/r.BestStatic - 1 }

// OnlineOfOracle is the fraction of the oracle's IPC the bandit reaches.
func (r AdaptiveRow) OnlineOfOracle() float64 { return r.OnlineIPC / r.OracleIPC }

// AdaptiveResult is the fig-adaptive experiment outcome.
type AdaptiveResult struct {
	CandidateNames []string
	Rows           []AdaptiveRow
}

// Adaptive runs the fig-adaptive policy-controller family: for each
// workload it simulates every static candidate, builds the oracle's
// per-epoch schedule from the statics' aligned epoch-IPC series (pass
// one), replays it through the oracle controller (pass two), and runs the
// online bandit — all through the shared deterministic cell engine, so
// the table is byte-identical under any parallelism.
func Adaptive(opts Options) (*AdaptiveResult, error) {
	cands, candNames := adaptiveCandidates()
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = append(workload.Names(), "m88ksim-phased")
	}

	mkCfg := func(spec core.PolicySpec) core.Config {
		cfg := core.ConfigSEE()
		cfg.FetchWidth = AdaptiveFetchWidth
		cfg.Policy = spec
		return cfg
	}
	ncs := make([]NamedConfig, 0, len(cands)+1)
	for i, name := range candNames {
		ncs = append(ncs, NamedConfig{
			Name: "static/" + name,
			Cfg: mkCfg(core.PolicySpec{
				Kind:        "static",
				EpochCycles: AdaptiveEpochCycles,
				Candidates:  []policy.Setting{cands[i]},
			}),
		})
	}
	ncs = append(ncs, NamedConfig{
		Name: "online",
		Cfg: mkCfg(core.PolicySpec{
			Kind:        "online",
			EpochCycles: AdaptiveEpochCycles,
			Candidates:  cands,
			Params:      AdaptiveOnlineParams(),
		}),
	})
	mat, err := runMatrix(opts, ncs)
	if err != nil {
		return nil, err
	}

	// Pass two: one oracle run per workload, replaying the greedy
	// per-epoch schedule extracted from the statics' epoch-IPC series.
	// The schedule differs per workload, so each is its own configuration.
	res := &AdaptiveResult{CandidateNames: candNames}
	for _, bench := range mat.Benchmarks {
		row := AdaptiveRow{Benchmark: bench}
		series := make([][]float64, len(candNames))
		for i, name := range candNames {
			cell := mat.Cell(bench, "static/"+name)
			row.StaticIPC = append(row.StaticIPC, cell.IPC)
			if cell.IPC > row.BestStatic {
				row.BestStatic = cell.IPC
			}
			series[i] = cell.Stats.EpochIPC
		}
		online := mat.Cell(bench, "online")
		row.OnlineIPC = online.IPC
		row.Switches = online.Stats.PolicySwitches
		row.PVN = online.Stats.PVN()

		sched := greedySchedule(series)
		oracleOpts := opts
		oracleOpts.Benchmarks = []string{bench}
		omat, err := runMatrix(oracleOpts, []NamedConfig{{
			Name: "oracle",
			Cfg: mkCfg(core.PolicySpec{
				Kind:        "oracle",
				EpochCycles: AdaptiveEpochCycles,
				Candidates:  cands,
				Params:      policy.OracleParams(sched),
			}),
		}})
		if err != nil {
			return nil, err
		}
		row.OracleIPC = omat.IPC(bench, "oracle")
		if row.BestStatic > row.OracleIPC {
			row.OracleIPC = row.BestStatic
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// greedySchedule picks, for each epoch, the candidate whose static run had
// the highest IPC over that epoch's cycle window (ties to the lower
// index). All runs share one epoch length, so epoch e spans the same
// cycles in every series; the series end at different epochs (same
// instructions, different cycle counts), so the schedule stops at the
// shortest and the oracle controller holds its last entry beyond it.
func greedySchedule(series [][]float64) []int {
	n := 0
	for i, s := range series {
		if i == 0 || len(s) < n {
			n = len(s)
		}
	}
	if n == 0 {
		return []int{0}
	}
	sched := make([]int, n)
	for e := 0; e < n; e++ {
		for i := 1; i < len(series); i++ {
			if series[i][e] > series[sched[e]][e] {
				sched[e] = i
			}
		}
	}
	return sched
}

// Render formats the fig-adaptive table.
func (r *AdaptiveResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: phase-aware adaptive SEE policy (fig-adaptive)\n")
	fmt.Fprintf(&b, "fetch width %d (fetch-bound), epoch %d cycles, candidates: %s\n",
		AdaptiveFetchWidth, AdaptiveEpochCycles, strings.Join(r.CandidateNames, ", "))
	fmt.Fprintf(&b, "%-16s", "benchmark")
	for _, name := range r.CandidateNames {
		fmt.Fprintf(&b, " %9s", name)
	}
	fmt.Fprintf(&b, " %9s %9s %9s %8s %8s %8s\n",
		"oracle", "online", "vs-best", "of-orc", "switches", "PVN")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s", row.Benchmark)
		for _, ipc := range row.StaticIPC {
			fmt.Fprintf(&b, " %9.3f", ipc)
		}
		fmt.Fprintf(&b, " %9.3f %9.3f %+8.2f%% %7.1f%% %8d %7.1f%%\n",
			row.OracleIPC, row.OnlineIPC, 100*row.OnlineVsBest(),
			100*row.OnlineOfOracle(), row.Switches, 100*row.PVN)
	}
	b.WriteString("(oracle = greedy per-epoch replay of the best static, floored at best-static;\n")
	b.WriteString(" vs-best = online IPC vs the best static; of-orc = online as a fraction of oracle)\n")
	return b.String()
}
