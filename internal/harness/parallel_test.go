package harness

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// goldenSweepConfigs is a representative custom sweep: three models whose cells
// have very different costs, so parallel completion order genuinely
// scrambles relative to submission order.
func goldenSweepConfigs() []NamedConfig {
	return []NamedConfig{
		{Name: "monopath", Cfg: core.ConfigMonopath()},
		{Name: "see", Cfg: core.ConfigSEE()},
		{Name: "dualpath", Cfg: core.ConfigDualPath()},
	}
}

// TestParallelMatchesSequentialGolden is the engine's central guarantee,
// enforced rather than assumed: RunConfigs with Parallelism: 1 and with
// Parallelism: N must render byte-identical tables (and identical cell
// statistics) for the same sweep. CI runs this under -race, so it also
// proves the sharded path is data-race-free.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	base := Options{
		TargetInsts: 20000,
		Benchmarks:  []string{"compress", "gcc", "go"},
		Replicates:  2,
	}

	seq := base
	seq.Parallelism = 1
	mSeq, err := RunConfigs(seq, goldenSweepConfigs())
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	golden := RenderTable("parallel-golden sweep (IPC)", mSeq)
	if !strings.Contains(golden, "hmean") {
		t.Fatalf("golden table looks malformed:\n%s", golden)
	}

	for _, par := range []int{2, 8} {
		opts := base
		opts.Parallelism = par
		m, err := RunConfigs(opts, goldenSweepConfigs())
		if err != nil {
			t.Fatalf("parallel run (-j %d): %v", par, err)
		}
		if got := RenderTable("parallel-golden sweep (IPC)", m); got != golden {
			t.Errorf("-j %d table differs from -j 1 (must be byte-identical):\n-- sequential --\n%s\n-- parallel --\n%s", par, golden, got)
		}
		for _, b := range mSeq.Benchmarks {
			for _, c := range mSeq.Configs {
				c1, c2 := mSeq.Cell(b, c), m.Cell(b, c)
				if c1.IPC != c2.IPC || !reflect.DeepEqual(c1.Stats, c2.Stats) {
					t.Errorf("-j %d: cell %s/%s diverged from sequential run", par, b, c)
				}
			}
		}
	}
}

// TestParallelCellEventsCoverEveryCell: the OnCell stream under parallel
// execution reports every (benchmark, config, replicate) cell exactly
// once, with shard assignments inside the worker bound.
func TestParallelCellEventsCoverEveryCell(t *testing.T) {
	const par = 4
	var mu sync.Mutex
	seen := map[string]int{}
	opts := Options{
		TargetInsts: 10000,
		Benchmarks:  []string{"compress", "gcc"},
		Replicates:  2,
		Parallelism: par,
		OnCell: func(ev CellEvent) {
			if ev.Shard < 0 || ev.Shard >= par {
				t.Errorf("cell %s/%s shard %d outside [0,%d)", ev.Benchmark, ev.Config, ev.Shard, par)
			}
			mu.Lock()
			seen[CellID(ev.Benchmark, ev.Config, ev.Replicate)]++
			mu.Unlock()
		},
	}
	if _, err := RunConfigs(opts, goldenSweepConfigs()); err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * 2 // benchmarks x configs x replicates
	if len(seen) != want {
		t.Fatalf("OnCell saw %d distinct cells, want %d", len(seen), want)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("cell %s reported %d times", id, n)
		}
	}
}

// TestCellIDStability pins the cell-ID scheme: sweeps stream these IDs to
// clients, so changing the format is an API break.
func TestCellIDStability(t *testing.T) {
	if got := CellID("gcc", "see", 0); got != "gcc/see" {
		t.Errorf("CellID rep 0 = %q", got)
	}
	if got := CellID("gcc", "see", 3); got != "gcc/see/r3" {
		t.Errorf("CellID rep 3 = %q", got)
	}
}
