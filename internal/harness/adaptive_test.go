package harness

import (
	"reflect"
	"testing"
)

// TestAdaptiveDeterministicAcrossParallelism pins the fig-adaptive family
// to the deterministic-scheduler contract: the experiment — including the
// data-dependent second pass, whose oracle schedules are computed from the
// first pass's epoch-IPC series — must produce identical structured rows
// and identical rendered bytes under sequential and heavily-sharded
// execution.
func TestAdaptiveDeterministicAcrossParallelism(t *testing.T) {
	base := Options{
		TargetInsts: 60000,
		Benchmarks:  []string{"gcc", "m88ksim-phased"},
	}
	seq := base
	seq.Parallelism = 1
	par := base
	par.Parallelism = 8

	r1, err := Adaptive(seq)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Adaptive(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("fig-adaptive rows differ between -j1 and -j8:\n j1 %+v\n j8 %+v", r1, r8)
	}
	if r1.Render() != r8.Render() {
		t.Errorf("fig-adaptive rendered bytes differ between -j1 and -j8:\n j1:\n%s\n j8:\n%s",
			r1.Render(), r8.Render())
	}
}

// TestAdaptiveRowInvariants checks the family's structural guarantees on a
// small run: every simulated column is populated, best-static is the max
// of the statics, and the reported oracle is floored at best-static (the
// static schedules are members of the oracle's schedule space).
func TestAdaptiveRowInvariants(t *testing.T) {
	res, err := Adaptive(Options{
		TargetInsts: 40000,
		Benchmarks:  []string{"m88ksim-phased"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if len(row.StaticIPC) != len(res.CandidateNames) {
		t.Fatalf("%d static columns for %d candidates", len(row.StaticIPC), len(res.CandidateNames))
	}
	best := 0.0
	for i, ipc := range row.StaticIPC {
		if ipc <= 0 {
			t.Errorf("static %s IPC = %v, want > 0", res.CandidateNames[i], ipc)
		}
		if ipc > best {
			best = ipc
		}
	}
	if row.BestStatic != best {
		t.Errorf("BestStatic = %v, want max static %v", row.BestStatic, best)
	}
	if row.OracleIPC < row.BestStatic {
		t.Errorf("oracle %v below its best-static floor %v", row.OracleIPC, row.BestStatic)
	}
	if row.OnlineIPC <= 0 {
		t.Errorf("online IPC = %v, want > 0", row.OnlineIPC)
	}
}
