package harness

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
)

// CachePoint is one row of the memory-sensitivity extension study.
type CachePoint struct {
	Label      string
	MonoIPC    float64
	SEEIPC     float64
	SEEGain    float64 // relative
	DCacheMiss float64 // monopath D-cache miss rate
	ICacheMiss float64 // monopath I-cache miss rate
}

// CacheSensitivityResult is the extension study replacing the paper's
// always-hit cache assumption with a finite cache + miss penalty.
type CacheSensitivityResult struct {
	Points []CachePoint
}

// ExtensionCacheSensitivity evaluates how SEE's improvement responds to a
// real memory hierarchy. The paper assumes caches always hit (Sec. 4.2);
// this study sweeps the miss penalty of a small D-cache + I-cache pair and
// reports monopath vs SEE. The expected shape: cache misses lengthen
// branch resolution (bigger misprediction penalties — helps SEE) but also
// steal the spare bandwidth eager paths rely on; at moderate penalties the
// gain survives.
func ExtensionCacheSensitivity(opts Options) (*CacheSensitivityResult, error) {
	dc := cache.Config{Sets: 64, Ways: 2, LineWords: 8}  // 1k words data
	ic := cache.Config{Sets: 128, Ways: 2, LineWords: 8} // 2k entries insts
	points := []struct {
		label   string
		latency int // 0 = always hit (paper baseline)
	}{
		{"always hit (paper)", 0},
		{"miss penalty 4", 4},
		{"miss penalty 10", 10},
		{"miss penalty 20", 20},
	}
	res := &CacheSensitivityResult{}
	for _, pt := range points {
		mutate := func(c *core.Config) {
			if pt.latency == 0 {
				return
			}
			c.EnableDCache = true
			c.DCache = dc
			c.DCacheMissLatency = pt.latency
			c.EnableICache = true
			c.ICache = ic
			c.ICacheMissLatency = pt.latency
		}
		mono := core.ConfigMonopath()
		see := core.ConfigSEE()
		mutate(&mono)
		mutate(&see)
		mat, err := runMatrix(opts, []NamedConfig{
			{Name: "monopath", Cfg: mono},
			{Name: "gshare/JRS", Cfg: see},
		})
		if err != nil {
			return nil, err
		}
		monoH := mat.HarmonicMean("monopath")
		seeH := mat.HarmonicMean("gshare/JRS")
		var dmiss, imiss float64
		for _, b := range mat.Benchmarks {
			c := mat.Cell(b, "monopath")
			dmiss += c.Stats.DCacheMissRate()
			imiss += c.Stats.ICacheMissRate()
		}
		n := float64(len(mat.Benchmarks))
		res.Points = append(res.Points, CachePoint{
			Label:      pt.label,
			MonoIPC:    monoH,
			SEEIPC:     seeH,
			SEEGain:    seeH/monoH - 1,
			DCacheMiss: dmiss / n,
			ICacheMiss: imiss / n,
		})
	}
	return res, nil
}

// Render formats the cache-sensitivity study.
func (r *CacheSensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: memory-hierarchy sensitivity (paper assumes always-hit caches)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s\n",
		"configuration", "monopath", "SEE", "SEE gain", "d$ miss", "i$ miss")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22s %10.3f %10.3f %+9.1f%% %9.1f%% %9.1f%%\n",
			p.Label, p.MonoIPC, p.SEEIPC, 100*p.SEEGain, 100*p.DCacheMiss, 100*p.ICacheMiss)
	}
	return b.String()
}

// CEDesignPoint is one estimator configuration of the design-space study.
type CEDesignPoint struct {
	Name    string
	HMean   float64
	MeanPVN float64
	SeeGain float64 // vs the shared monopath baseline
}

// CEDesignResult is the confidence-estimator design-space extension: a
// sweep over counter width, threshold and indexing, reporting PVN and the
// resulting SEE gain. It generalizes the paper's single 1-bit-vs-4-bit
// observation into the full trade-off curve.
type CEDesignResult struct {
	MonoHMean float64
	Points    []CEDesignPoint
}

// ExtensionCEDesignSpace sweeps the JRS design space.
func ExtensionCEDesignSpace(opts Options) (*CEDesignResult, error) {
	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"1-bit enhanced (paper)", func(c *core.Config) {}},
		{"1-bit classic index", func(c *core.Config) { c.Confidence.EnhancedIndex = false }},
		{"2-bit thr=sat", func(c *core.Config) { c.Confidence.CtrBits = 2 }},
		{"2-bit thr=2", func(c *core.Config) { c.Confidence.CtrBits = 2; c.Confidence.Threshold = 2 }},
		{"4-bit thr=sat", func(c *core.Config) { c.Confidence.CtrBits = 4 }},
		{"4-bit thr=8", func(c *core.Config) { c.Confidence.CtrBits = 4; c.Confidence.Threshold = 8 }},
		{"4-bit thr=2", func(c *core.Config) { c.Confidence.CtrBits = 4; c.Confidence.Threshold = 2 }},
	}
	ncs := []NamedConfig{{Name: "monopath", Cfg: core.ConfigMonopath()}}
	for _, v := range variants {
		cfg := core.ConfigSEE()
		v.mutate(&cfg)
		ncs = append(ncs, NamedConfig{Name: v.name, Cfg: cfg})
	}
	mat, err := runMatrix(opts, ncs)
	if err != nil {
		return nil, err
	}
	res := &CEDesignResult{MonoHMean: mat.HarmonicMean("monopath")}
	for _, v := range variants {
		var pvn float64
		for _, b := range mat.Benchmarks {
			pvn += mat.Cell(b, v.name).Stats.PVN()
		}
		h := mat.HarmonicMean(v.name)
		res.Points = append(res.Points, CEDesignPoint{
			Name:    v.name,
			HMean:   h,
			MeanPVN: pvn / float64(len(mat.Benchmarks)),
			SeeGain: h/res.MonoHMean - 1,
		})
	}
	return res, nil
}

// Render formats the design-space study.
func (r *CEDesignResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: JRS confidence-estimator design space\n")
	fmt.Fprintf(&b, "monopath baseline hmean IPC %.3f\n", r.MonoHMean)
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "estimator", "hmean IPC", "mean PVN", "SEE gain")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-26s %10.3f %9.1f%% %+9.1f%%\n", p.Name, p.HMean, 100*p.MeanPVN, 100*p.SeeGain)
	}
	b.WriteString("(higher PVN -> fewer wasted divergences; the paper's 1-bit choice sits at the PVN extreme)\n")
	return b.String()
}
