package harness

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
)

// TestTracingObservationOnly is the tentpole invariant of the obs
// subsystem: attaching a tracer to a sweep changes nothing about the
// rendered table, and every simulated cell delivers a bounded,
// well-formed event stream.
func TestTracingObservationOnly(t *testing.T) {
	opts := Options{TargetInsts: 30_000, Benchmarks: []string{"go"}}
	configs := []NamedConfig{
		{Name: "monopath", Cfg: coreMonopath()},
	}
	plain, err := RunConfigs(opts, configs)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	type capture struct {
		events  []pipeline.TraceEvent
		dropped uint64
	}
	got := map[string]capture{}
	traced := opts
	traced.TraceLimit = 4096
	traced.OnTrace = func(ev CellEvent, events []pipeline.TraceEvent, dropped uint64) {
		mu.Lock()
		got[ev.Benchmark+"/"+ev.Config] = capture{events, dropped}
		mu.Unlock()
	}
	withTrace, err := RunConfigs(traced, configs)
	if err != nil {
		t.Fatal(err)
	}

	a := RenderTable("t", plain)
	b := RenderTable("t", withTrace)
	if a != b {
		t.Fatalf("tracing changed the rendered table:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}

	cap, ok := got["go/monopath"]
	if !ok {
		t.Fatalf("OnTrace never fired for go/monopath (got %v)", got)
	}
	if len(cap.events) == 0 {
		t.Fatal("captured zero events from a simulated cell")
	}
	if cap.dropped == 0 {
		t.Errorf("a 30k-instruction run should overflow a 4096-event ring; dropped = 0")
	}
	var lastCycle uint64
	for i, e := range cap.events {
		if e.Cycle < lastCycle {
			t.Fatalf("event %d: cycle %d after %d — snapshot out of order", i, e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
	}
}

// TestTracingSkipsMemoizedCells: cache replays do not simulate, so they
// must not produce trace events — the trace of a fully-memoized sweep
// is empty while its table is still bit-identical.
func TestTracingSkipsMemoizedCells(t *testing.T) {
	memo := cache.NewLRU[MemoValue](64)
	opts := Options{TargetInsts: 30_000, Benchmarks: []string{"go"}, Memo: memo}
	configs := []NamedConfig{{Name: "monopath", Cfg: coreMonopath()}}

	first, err := RunConfigs(opts, configs)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	fired := 0
	traced := opts
	traced.TraceLimit = 1024
	traced.OnTrace = func(ev CellEvent, events []pipeline.TraceEvent, dropped uint64) {
		mu.Lock()
		fired++
		mu.Unlock()
	}
	second, err := RunConfigs(traced, configs)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("OnTrace fired %d time(s) on a fully-memoized sweep", fired)
	}
	if RenderTable("t", first) != RenderTable("t", second) {
		t.Fatal("memoized replay with tracing enabled changed the table")
	}
}
