// Package harness regenerates every table and figure of the paper's
// evaluation section (Sec. 4-5): Table 1 (benchmark characteristics),
// Figure 8 (baseline performance incl. dual-path), Figure 9 (branch
// predictor size), Figure 10 (instruction window size), Figure 11
// (functional unit configuration), Figure 12 (pipeline depth), plus the
// ablations DESIGN.md calls out.
//
// Results are returned as structured tables and rendered as fixed-width
// text so cmd/experiments can print exactly the rows/series the paper
// reports.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MemoValue is one memoized simulation outcome: everything a Matrix cell
// needs. Simulations are deterministic, so replaying a MemoValue is
// bit-identical to re-running the cell.
type MemoValue struct {
	IPC   float64
	Stats stats.Sim
}

// Memo is a result cache consulted per (benchmark, config, replicate)
// cell, keyed by the canonical hash of the normalized config plus the
// workload identity and instruction cap. Implementations must be safe for
// concurrent use; cache.LRU[MemoValue] satisfies the interface.
type Memo interface {
	Get(key string) (MemoValue, bool)
	Put(key string, v MemoValue)
}

// CellEvent reports one finished (benchmark, config, replicate) cell to
// Options.OnCell.
type CellEvent struct {
	Benchmark string
	Config    string
	Replicate int
	FromCache bool
	IPC       float64
	Committed uint64
	Cycles    uint64
	Elapsed   time.Duration
	// Shard is the scheduler worker that executed the cell, in
	// [0, Parallelism). Observability only: results never depend on it.
	Shard int
}

// CellID is the stable identity of one (benchmark, config, replicate)
// cell, used as the sched task ID and in the /v1/sweeps cell stream:
// "bench/config" for replicate 0, "bench/config/rN" beyond.
func CellID(benchmark, config string, replicate int) string {
	if replicate == 0 {
		return benchmark + "/" + config
	}
	return fmt.Sprintf("%s/%s/r%d", benchmark, config, replicate)
}

// CellKey is the content address of one simulation outcome: the workload
// identity (name, seed, dynamic length) plus the canonical hash of the
// normalized configuration. Two cells with equal keys are guaranteed
// bit-identical results (simulations are deterministic), so the key is
// safe to use for memoization, fleet-wide result stores, and idempotent
// re-execution after a crash.
func CellKey(spec workload.Spec, cfgHash string) string {
	return fmt.Sprintf("w=%s:%d:%d|c=%s", spec.Name, spec.Seed, spec.TargetInsts, cfgHash)
}

// CellSpec is the full identity of one cell handed to Options.Exec: enough
// for a remote node to regenerate the workload program deterministically
// and run the simulation, and for the caller to address the result.
type CellSpec struct {
	Benchmark string
	// Spec is the resolved workload spec, replicate seeding applied.
	Spec      workload.Spec
	Replicate int
	Config    core.Config
	// ConfigHash is the canonical polypath hash of Config.
	ConfigHash string
}

// Options configure an experiment run.
type Options struct {
	// TargetInsts is the dynamic instruction count per benchmark run
	// (0 = workload.DefaultTargetInsts). The paper runs 113M-553M; this
	// reproduction defaults to a scaled-down length (see DESIGN.md).
	TargetInsts uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Benchmarks restricts the suite to the named benchmarks (empty = the
	// Table 1 suite plus any Extra workloads). Names resolve against Extra
	// first, then the workload registry (suite, extended families, runtime
	// registrations).
	Benchmarks []string
	// Extra supplies job-scoped workloads — typically trace-derived specs
	// named trace-<digest> — resolvable by name for this run only, without
	// touching the process-global workload registry. polyserve jobs wire
	// their inline workload specs here.
	Extra []workload.Benchmark
	// Replicates re-runs every (benchmark, config) cell with additional
	// workload seeds and averages the IPC, tightening the estimates at a
	// proportional simulation cost (0 or 1 = single run, the default).
	Replicates int
	// Context cancels in-flight simulations mid-cycle-loop when done
	// (nil = background). The experiment returns the context's error.
	Context context.Context
	// Memo, when non-nil, caches per-cell results across runs. Results
	// are deterministic, so cache replay is bit-identical to simulation.
	Memo Memo
	// OnCell, when non-nil, observes every completed cell (including
	// cache hits). It may be called concurrently from worker goroutines.
	OnCell func(CellEvent)
	// Audit, when not AuditOff, overrides the invariant-audit level of
	// every simulated configuration. Auditing is excluded from the
	// canonical config hash (it cannot change results), so memoized cells
	// are shared across audit levels.
	Audit pipeline.AuditLevel
	// TraceLimit, when > 0 together with OnTrace, attaches a bounded
	// lock-free ring tracer (capacity TraceLimit events, keeping the most
	// recent) to every simulated cell. Tracing is observation-only: it is
	// excluded from the memo identity like Audit, results are
	// bit-identical with it on or off, and memoized (cache-replayed)
	// cells produce no events.
	TraceLimit int
	// OnTrace receives the captured event stream of every simulated
	// (non-memoized) cell: its CellEvent, the retained events in arrival
	// order, and how many events the capture bound dropped. It may be
	// called concurrently from worker goroutines.
	OnTrace func(ev CellEvent, events []pipeline.TraceEvent, dropped uint64)
	// Observer, when non-nil, receives scheduler lifecycle events
	// (task started/done per shard) for every simulation cell. polyserve
	// wires this to its sweep shard metrics.
	Observer sched.Observer
	// Exec, when non-nil, replaces in-process simulation of every
	// non-memoized cell: instead of generating the workload program and
	// running the pipeline locally, the cell's full identity is handed to
	// Exec, which must return the bit-identical MemoValue a local run
	// would produce. polyserve's coordinator wires this to remote worker
	// dispatch; simulations are deterministic, so any idempotent executor
	// keyed on CellKey preserves the harness's byte-identical-output
	// contract. Exec may be called concurrently. Tracing (OnTrace) is not
	// supported under Exec — remote cells produce no trace events.
	Exec func(ctx context.Context, cell CellSpec) (MemoValue, error)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) replicates() int {
	if o.Replicates < 2 {
		return 1
	}
	return o.Replicates
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// lookup resolves a benchmark name: job-scoped Extra workloads first, then
// the workload registry (suite, extended families, runtime registrations).
func (o Options) lookup(name string) (workload.Benchmark, error) {
	for _, b := range o.Extra {
		if b.Spec.Name != name {
			continue
		}
		if o.TargetInsts != 0 {
			b.Spec.TargetInsts = o.TargetInsts
		} else if b.Spec.TargetInsts == 0 {
			b.Spec.TargetInsts = workload.DefaultTargetInsts
		}
		return b, nil
	}
	return workload.ByName(name, o.TargetInsts)
}

// suite materializes the benchmark programs once; they are reused across
// all configurations of an experiment.
// suite returns one generated program per (benchmark, replicate).
func (o Options) suite() ([]workload.Benchmark, [][]*isa.Program, error) {
	var bms []workload.Benchmark
	if len(o.Benchmarks) == 0 {
		// Default matrix: the Table 1 suite (byte-identical to the
		// pre-Extra behaviour) plus any job-scoped workloads.
		bms = workload.Suite(o.TargetInsts)
		for _, b := range o.Extra {
			extra, err := o.lookup(b.Spec.Name)
			if err != nil {
				return nil, nil, err
			}
			bms = append(bms, extra)
		}
	} else {
		for _, name := range o.Benchmarks {
			bm, err := o.lookup(name)
			if err != nil {
				return nil, nil, err
			}
			bms = append(bms, bm)
		}
	}
	reps := o.replicates()
	if o.Exec != nil {
		// Remote execution: workers regenerate programs from the workload
		// spec themselves, so generating them here would be pure waste.
		// The progs matrix stays nil-valued; the local simulation path is
		// never taken when Exec is set.
		progs := make([][]*isa.Program, len(bms))
		for i := range progs {
			progs[i] = make([]*isa.Program, reps)
		}
		return bms, progs, nil
	}
	// Generation is sharded through the same deterministic engine as the
	// cells: each (benchmark, replicate) is one task with a stable ID, and
	// the positional merge fills progs identically under any worker count.
	type genJob struct{ bench, rep int }
	jobs := make([]genJob, 0, len(bms)*reps)
	for i := range bms {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, genJob{bench: i, rep: r})
		}
	}
	res, err := sched.Map(
		sched.Options{Workers: o.parallelism(), Context: o.context()},
		jobs,
		func(j genJob, _ int) string { return "gen/" + CellID(bms[j.bench].Spec.Name, "workload", j.rep) },
		func(tc *sched.TaskContext, j genJob) (*isa.Program, error) {
			spec := bms[j.bench].Spec
			spec.Seed += int64(1000 * j.rep)
			return workload.Generate(spec)
		})
	if err != nil {
		return nil, nil, err
	}
	progs := make([][]*isa.Program, len(bms))
	for i := range bms {
		progs[i] = make([]*isa.Program, reps)
	}
	for k, j := range jobs {
		progs[j.bench][j.rep] = res[k].Value
	}
	return bms, progs, nil
}

// NamedConfig pairs a configuration with its display label.
type NamedConfig struct {
	Name string
	Cfg  core.Config
}

// Cell is one (benchmark, configuration) simulation outcome. With
// replicates, IPC is the mean across workload seeds and Stats comes from
// the canonical (replicate-0) seed.
type Cell struct {
	Benchmark string
	Config    string
	IPC       float64
	Stats     stats.Sim
	ipcByRep  []float64
}

// Matrix is a benchmark x configuration grid of simulation results.
type Matrix struct {
	Benchmarks []string
	Configs    []string
	cells      map[string]map[string]*Cell // benchmark -> config -> cell
}

// MarshalJSON renders the matrix as {benchmarks, configs, ipc} where ipc
// maps benchmark -> config -> IPC, for machine-readable experiment output.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	ipc := make(map[string]map[string]float64, len(m.Benchmarks))
	for _, b := range m.Benchmarks {
		row := make(map[string]float64, len(m.Configs))
		for _, c := range m.Configs {
			row[c] = m.IPC(b, c)
		}
		ipc[b] = row
	}
	hmean := make(map[string]float64, len(m.Configs))
	for _, c := range m.Configs {
		hmean[c] = m.HarmonicMean(c)
	}
	return json.Marshal(struct {
		Benchmarks []string                      `json:"benchmarks"`
		Configs    []string                      `json:"configs"`
		IPC        map[string]map[string]float64 `json:"ipc"`
		HMean      map[string]float64            `json:"hmean"`
	}{m.Benchmarks, m.Configs, ipc, hmean})
}

// Cell returns the result for (benchmark, config), or nil.
func (m *Matrix) Cell(benchmark, config string) *Cell {
	row := m.cells[benchmark]
	if row == nil {
		return nil
	}
	return row[config]
}

// IPC returns the IPC for (benchmark, config); 0 if missing.
func (m *Matrix) IPC(benchmark, config string) float64 {
	if c := m.Cell(benchmark, config); c != nil {
		return c.IPC
	}
	return 0
}

// HarmonicMean returns the harmonic-mean IPC of a configuration across all
// benchmarks, the aggregation the paper uses.
func (m *Matrix) HarmonicMean(config string) float64 {
	vals := make([]float64, 0, len(m.Benchmarks))
	for _, b := range m.Benchmarks {
		vals = append(vals, m.IPC(b, config))
	}
	return stats.HarmonicMeanIPC(vals)
}

// runMatrix simulates every benchmark under every configuration through
// the internal/sched engine, reusing one generated program per
// (benchmark, replicate). With Options.Memo set, previously-simulated
// cells replay from the cache; with Options.Context set, cancellation
// aborts in-flight cycle loops.
//
// Determinism contract: cells are submitted in (benchmark, config,
// replicate) order with stable IDs, the engine merges results
// positionally, and the matrix is reduced sequentially afterwards — so
// the matrix (and any table rendered from it) is bit-identical under any
// Parallelism, and the first error reported is the lowest-ordered
// failing cell, every run.
func runMatrix(opts Options, configs []NamedConfig) (*Matrix, error) {
	ctx := opts.context()
	bms, progs, err := opts.suite()
	if err != nil {
		return nil, err
	}
	mat := &Matrix{cells: make(map[string]map[string]*Cell)}
	for _, bm := range bms {
		mat.Benchmarks = append(mat.Benchmarks, bm.Spec.Name)
		mat.cells[bm.Spec.Name] = make(map[string]*Cell)
	}
	for _, nc := range configs {
		mat.Configs = append(mat.Configs, nc.Name)
	}
	// One canonical hash per configuration, shared by all its cells.
	// Needed by the memo key and by remote dispatch (Exec) alike.
	cfgHash := make([]string, len(configs))
	if opts.Memo != nil || opts.Exec != nil {
		for i, nc := range configs {
			h, err := pipeline.CanonicalHash(nc.Cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", nc.Name, err)
			}
			cfgHash[i] = h
		}
	}

	type job struct {
		bench string
		spec  workload.Spec
		prog  *isa.Program
		nc    NamedConfig
		hash  string
		rep   int
	}
	reps := opts.replicates()
	jobs := make([]job, 0, len(bms)*len(configs)*reps)
	for i, bm := range bms {
		for ci, nc := range configs {
			for r := 0; r < reps; r++ {
				spec := bm.Spec
				spec.Seed += int64(1000 * r) // mirror suite()'s replicate seeding
				jobs = append(jobs, job{
					bench: bm.Spec.Name, spec: spec, prog: progs[i][r],
					nc: nc, hash: cfgHash[ci], rep: r,
				})
			}
		}
	}

	type cellOut struct {
		val       MemoValue
		fromCache bool
	}
	// One arena per scheduler shard: a shard's tasks run strictly
	// sequentially on one worker, so its arena recycles machine buffers
	// from cell to cell without locking.
	arenas := make([]*pipeline.Arena, opts.parallelism())
	for i := range arenas {
		arenas[i] = pipeline.NewArena()
	}
	tasks := make([]sched.Task[cellOut], len(jobs))
	for i, j := range jobs {
		j := j
		tasks[i] = sched.Task[cellOut]{
			ID: CellID(j.bench, j.nc.Name, j.rep),
			Run: func(tc *sched.TaskContext) (cellOut, error) {
				var (
					out  cellOut
					key  string
					ring *obs.Ring
				)
				start := time.Now()
				if opts.Memo != nil {
					key = CellKey(j.spec, j.hash)
					out.val, out.fromCache = opts.Memo.Get(key)
				}
				if !out.fromCache {
					if opts.Exec != nil {
						v, err := opts.Exec(tc.Context, CellSpec{
							Benchmark:  j.bench,
							Spec:       j.spec,
							Replicate:  j.rep,
							Config:     j.nc.Cfg,
							ConfigHash: j.hash,
						})
						if err != nil {
							return out, fmt.Errorf("%s/%s: %w", j.bench, j.nc.Name, err)
						}
						out.val = v
					} else {
						cfg := j.nc.Cfg
						if opts.Audit != pipeline.AuditOff {
							cfg.Audit = opts.Audit
						}
						var tr pipeline.Tracer
						if opts.TraceLimit > 0 && opts.OnTrace != nil {
							ring = obs.NewRing(opts.TraceLimit)
							tr = ring
						}
						res, err := core.RunCell(tc.Context, j.prog, cfg, tr, arenas[tc.Shard])
						if err != nil {
							return out, fmt.Errorf("%s/%s: %w", j.bench, j.nc.Name, err)
						}
						out.val = MemoValue{IPC: res.IPC, Stats: res.Stats}
					}
					if opts.Memo != nil {
						opts.Memo.Put(key, out.val)
					}
				}
				cellEv := CellEvent{
					Benchmark: j.bench,
					Config:    j.nc.Name,
					Replicate: j.rep,
					FromCache: out.fromCache,
					IPC:       out.val.IPC,
					Committed: out.val.Stats.Committed,
					Cycles:    out.val.Stats.Cycles,
					Elapsed:   time.Since(start),
					Shard:     tc.Shard,
				}
				if ring != nil {
					opts.OnTrace(cellEv, ring.Snapshot(), ring.Dropped())
				}
				if opts.OnCell != nil {
					opts.OnCell(cellEv)
				}
				return out, nil
			},
		}
	}
	// ContainPanics: a panic in a cell (outside the pipeline's own
	// machine-check containment) fails the cell, not the process.
	results, runErr := sched.Run(sched.Options{
		Workers:       opts.parallelism(),
		Context:       ctx,
		ContainPanics: true,
		Observer:      opts.Observer,
	}, tasks, nil)
	if runErr != nil {
		// Task errors already carry the cell identity (the sim path wraps
		// with bench/config, a contained panic is a *sched.PanicError
		// naming its task); cancellation skips are the bare context error.
		return nil, runErr
	}
	// Order-preserving merge: fill the matrix from the positional results,
	// strictly sequentially, in submission order.
	for i, j := range jobs {
		cell := mat.cells[j.bench][j.nc.Name]
		if cell == nil {
			cell = &Cell{
				Benchmark: j.bench,
				Config:    j.nc.Name,
				ipcByRep:  make([]float64, reps),
			}
			mat.cells[j.bench][j.nc.Name] = cell
		}
		val := results[i].Value.val
		cell.ipcByRep[j.rep] = val.IPC
		if j.rep == 0 {
			// Replicate 0 (the suite's canonical seed) carries the
			// detailed statistics; extra replicates only tighten IPC.
			cell.Stats = val.Stats
		}
	}
	for _, row := range mat.cells {
		for _, cell := range row {
			sum := 0.0
			for _, v := range cell.ipcByRep {
				sum += v
			}
			cell.IPC = sum / float64(len(cell.ipcByRep))
		}
	}
	return mat, nil
}

// RunConfigs is the exported deterministic fan-out: it simulates every
// benchmark of the suite under every named configuration and returns the
// result matrix. It is the engine behind the figure/ablation experiments
// and the custom single-config and sweep jobs polyserve accepts — both
// paths produce bit-identical numbers for the same inputs.
func RunConfigs(opts Options, configs []NamedConfig) (*Matrix, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("harness: no configurations given")
	}
	seen := make(map[string]bool, len(configs))
	for _, nc := range configs {
		if nc.Name == "" {
			return nil, fmt.Errorf("harness: configuration with empty name")
		}
		if seen[nc.Name] {
			return nil, fmt.Errorf("harness: duplicate configuration name %q", nc.Name)
		}
		seen[nc.Name] = true
	}
	return runMatrix(opts, configs)
}

// RenderTable renders a matrix as the fixed-width IPC table used by
// cmd/experiments, so service responses and CLI output are byte-identical.
func RenderTable(title string, m *Matrix) string {
	return renderIPCTable(title, m)
}

// renderIPCTable renders a benchmark x configuration IPC grid with a
// harmonic-mean row, in the paper's presentation style.
func renderIPCTable(title string, m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "benchmark")
	for _, c := range m.Configs {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	for _, bm := range m.Benchmarks {
		fmt.Fprintf(&b, "%-10s", bm)
		for _, c := range m.Configs {
			fmt.Fprintf(&b, " %18.3f", m.IPC(bm, c))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "hmean")
	for _, c := range m.Configs {
		fmt.Fprintf(&b, " %18.3f", m.HarmonicMean(c))
	}
	b.WriteByte('\n')
	return b.String()
}
