package harness

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestHarnessRunsAreBitIdentical is the determinism regression test for the
// simulator core: the same experiment run twice — with parallel fan-out, so
// it also exercises the concurrent paths under -race — must produce exactly
// the same IPC and per-cell statistics, bit for bit. Any nondeterminism
// (map-iteration order leaking into results, shared mutable state between
// concurrently simulated machines, pool reuse changing outcomes) fails this
// test rather than silently perturbing the paper's tables.
func TestHarnessRunsAreBitIdentical(t *testing.T) {
	opts := Options{
		TargetInsts: 20000,
		Parallelism: 4,
		Benchmarks:  []string{"gcc", "go"},
	}
	first, err := Figure8(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := Figure8(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}

	if !reflect.DeepEqual(first.Matrix.Benchmarks, second.Matrix.Benchmarks) ||
		!reflect.DeepEqual(first.Matrix.Configs, second.Matrix.Configs) {
		t.Fatalf("matrix shape differs between runs")
	}
	for _, b := range first.Matrix.Benchmarks {
		for _, c := range first.Matrix.Configs {
			c1, c2 := first.Matrix.Cell(b, c), second.Matrix.Cell(b, c)
			if c1.IPC != c2.IPC {
				t.Errorf("%s/%s: IPC %v vs %v", b, c, c1.IPC, c2.IPC)
			}
			if !reflect.DeepEqual(c1.Stats, c2.Stats) {
				t.Errorf("%s/%s: stats differ between runs:\n run 1: %+v\n run 2: %+v",
					b, c, c1.Stats, c2.Stats)
			}
		}
	}
	if !reflect.DeepEqual(first.Extras, second.Extras) {
		t.Errorf("Figure 8 companion metrics differ between runs")
	}
}

// TestRepeatedSimulationIsBitIdentical runs one (benchmark, config) cell
// twice on the same machine configuration and asserts the complete
// statistics block — misprediction counts, confidence-estimator counters,
// histograms, everything — is identical. This pins down determinism at the
// single-machine level, independent of the harness scheduling above.
func TestRepeatedSimulationIsBitIdentical(t *testing.T) {
	bm, err := workload.ByName("gcc", 20000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		cfg  core.Config
	}{
		{"monopath", core.ConfigMonopath()},
		{"see", core.ConfigSEE()},
	} {
		r1, err := core.Run(prog, cfg.cfg)
		if err != nil {
			t.Fatalf("%s: first run: %v", cfg.name, err)
		}
		r2, err := core.Run(prog, cfg.cfg)
		if err != nil {
			t.Fatalf("%s: second run: %v", cfg.name, err)
		}
		if r1.IPC != r2.IPC {
			t.Errorf("%s: IPC %v vs %v", cfg.name, r1.IPC, r2.IPC)
		}
		if !reflect.DeepEqual(r1.Stats, r2.Stats) {
			t.Errorf("%s: stats differ between identical runs", cfg.name)
		}
	}
}
