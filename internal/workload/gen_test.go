package workload

import (
	"testing"

	"repro/internal/isa"
)

func smallSpec() Spec {
	return Spec{
		Name: "small", Seed: 1, TargetInsts: 20_000,
		Branches: []BranchSpec{
			{Kind: KindBernoulli, Bias: 0.5},
			{Kind: KindPattern, Period: 4},
			{Kind: KindLoop, Trip: 4},
		},
		BlockLen: 4, Chains: 4,
		LoadFrac: 0.2, StoreFrac: 0.1,
	}
}

func TestGenerateProducesValidHaltingProgram(t *testing.T) {
	p, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	it := isa.NewInterp(p)
	if err := it.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	if !it.Halted {
		t.Fatal("generated program did not halt")
	}
}

func TestGenerateHitsInstructionTarget(t *testing.T) {
	for _, target := range []uint64{20_000, 100_000} {
		spec := smallSpec()
		spec.TargetInsts = target
		p, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		it := isa.NewInterp(p)
		if err := it.Run(1 << 24); err != nil {
			t.Fatal(err)
		}
		got := float64(it.InstCount)
		if got < 0.7*float64(target) || got > 1.3*float64(target) {
			t.Errorf("target %d: executed %d instructions (outside 30%% band)", target, it.InstCount)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatal("non-deterministic code size")
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	for i := range p1.DataInit {
		if p1.DataInit[i] != p2.DataInit[i] {
			t.Fatalf("data word %d differs", i)
		}
	}
}

func TestGenerateBranchBiasRealized(t *testing.T) {
	// A single Bernoulli(0.8) branch: its dynamic taken rate must be ~0.8.
	spec := Spec{
		Name: "bias", Seed: 3, TargetInsts: 60_000,
		Branches: []BranchSpec{{Kind: KindBernoulli, Bias: 0.8}},
		BlockLen: 3, Chains: 2,
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := isa.Trace(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// The generated program has two static branch sites: the Bernoulli
	// diamond and the outer loop back-edge. Identify the diamond as the
	// site whose taken rate is far from 1.
	taken := map[int32]int{}
	total := map[int32]int{}
	for _, r := range recs {
		total[r.PC]++
		if r.Taken {
			taken[r.PC]++
		}
	}
	found := false
	for pc, n := range total {
		rate := float64(taken[pc]) / float64(n)
		if rate > 0.99 { // outer loop
			continue
		}
		found = true
		if rate < 0.75 || rate > 0.85 {
			t.Errorf("bernoulli branch@%d taken rate %.3f, want ~0.8", pc, rate)
		}
	}
	if !found {
		t.Error("no bernoulli branch site found in trace")
	}
}

func TestGeneratePatternPeriodRealized(t *testing.T) {
	spec := Spec{
		Name: "pat", Seed: 4, TargetInsts: 30_000,
		Branches: []BranchSpec{{Kind: KindPattern, Period: 4}},
		BlockLen: 2, Chains: 2,
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := isa.Trace(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// The pattern site is the non-loop site; it must produce TTTN repeats.
	var outcomes []bool
	var patPC int32 = -1
	total := map[int32]int{}
	taken := map[int32]int{}
	for _, r := range recs {
		total[r.PC]++
		if r.Taken {
			taken[r.PC]++
		}
	}
	for pc, n := range total {
		rate := float64(taken[pc]) / float64(n)
		if rate > 0.70 && rate < 0.80 { // 3/4 taken
			patPC = pc
		}
	}
	if patPC < 0 {
		t.Fatal("pattern branch site not found (expected ~75% taken)")
	}
	for _, r := range recs {
		if r.PC == patPC {
			outcomes = append(outcomes, r.Taken)
		}
	}
	for i := 0; i+4 <= len(outcomes)-4; i += 4 {
		window := outcomes[i : i+4]
		want := []bool{true, true, true, false}
		for j := range window {
			if window[j] != want[j] {
				t.Fatalf("pattern broken at occurrence %d: %v", i, window)
			}
		}
	}
}

func TestGenerateLoopTripRealized(t *testing.T) {
	spec := Spec{
		Name: "loop", Seed: 5, TargetInsts: 30_000,
		Branches: []BranchSpec{{Kind: KindLoop, Trip: 6}},
		BlockLen: 2, Chains: 2,
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := isa.Trace(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// Inner-loop back edge: taken 5 of 6. Find a site with rate ~5/6 and
	// check consecutive runs of 5 takens then a not-taken.
	total := map[int32]int{}
	taken := map[int32]int{}
	for _, r := range recs {
		total[r.PC]++
		if r.Taken {
			taken[r.PC]++
		}
	}
	var loopPC int32 = -1
	for pc, n := range total {
		rate := float64(taken[pc]) / float64(n)
		if rate > 0.80 && rate < 0.87 {
			loopPC = pc
		}
	}
	if loopPC < 0 {
		t.Fatal("loop back-edge not found (expected ~83% taken)")
	}
	run := 0
	for _, r := range recs {
		if r.PC != loopPC {
			continue
		}
		if r.Taken {
			run++
			if run > 5 {
				t.Fatal("loop runs longer than trip count")
			}
		} else {
			if run != 5 {
				t.Fatalf("loop exited after %d takens, want 5", run)
			}
			run = 0
		}
	}
}

func TestGenerateSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "a", TargetInsts: 0, Branches: []BranchSpec{{Kind: KindLoop, Trip: 4}}, BlockLen: 1, Chains: 1},
		{Name: "b", TargetInsts: 100, Branches: nil, BlockLen: 1, Chains: 1},
		{Name: "c", TargetInsts: 100, Branches: []BranchSpec{{Kind: KindBernoulli, Bias: 1.5}}, BlockLen: 1, Chains: 1},
		{Name: "d", TargetInsts: 100, Branches: []BranchSpec{{Kind: KindPattern, Period: 1}}, BlockLen: 1, Chains: 1},
		{Name: "e", TargetInsts: 100, Branches: []BranchSpec{{Kind: KindLoop, Trip: 1}}, BlockLen: 1, Chains: 1},
		{Name: "f", TargetInsts: 100, Branches: []BranchSpec{{Kind: KindLoop, Trip: 4}}, BlockLen: 1, Chains: 99},
		{Name: "g", TargetInsts: 100, Branches: []BranchSpec{{Kind: KindLoop, Trip: 4}}, BlockLen: 0, Chains: 1},
		{Name: "h", TargetInsts: 100, Branches: []BranchSpec{{Kind: BranchKind(99)}}, BlockLen: 1, Chains: 1},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %s: expected validation error", s.Name)
		}
	}
}

func TestMustGeneratePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustGenerate(Spec{Name: "bad"})
}

func TestSuiteCompleteAndRunnable(t *testing.T) {
	s := Suite(30_000)
	if len(s) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(s))
	}
	names := Names()
	wantNames := []string{"compress", "gcc", "perl", "go", "m88ksim", "xlisp", "vortex", "jpeg"}
	for i, w := range wantNames {
		if names[i] != w {
			t.Errorf("suite[%d] = %s, want %s (Table 1 order)", i, names[i], w)
		}
	}
	for _, b := range s {
		p, err := Generate(b.Spec)
		if err != nil {
			t.Fatalf("%s: %v", b.Spec.Name, err)
		}
		it := isa.NewInterp(p)
		if err := it.Run(1 << 22); err != nil {
			t.Fatalf("%s: %v", b.Spec.Name, err)
		}
		if !it.Halted {
			t.Errorf("%s did not halt", b.Spec.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("go", 1000)
	if err != nil || b.Spec.Name != "go" {
		t.Errorf("ByName(go) = %v, %v", b.Spec.Name, err)
	}
	if _, err := ByName("nonesuch", 1000); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestSuiteDefaultTarget(t *testing.T) {
	s := Suite(0)
	if s[0].Spec.TargetInsts != DefaultTargetInsts {
		t.Errorf("default target = %d", s[0].Spec.TargetInsts)
	}
}

func TestGenerateSwitchRealized(t *testing.T) {
	spec := Spec{
		Name: "sw", Seed: 21, TargetInsts: 30_000,
		Branches: []BranchSpec{{Kind: KindSwitch, Fanout: 4}},
		BlockLen: 4, Chains: 2,
	}
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The program must contain exactly one indirect jump and a 4-entry
	// jump table whose words are valid case addresses.
	jri := 0
	for _, in := range p.Code {
		if in.Op == isa.Jri {
			jri++
		}
	}
	if jri != 1 {
		t.Fatalf("expected 1 jri, found %d", jri)
	}
	// Functional run distributes executions across all cases.
	recs, final, err := isa.Trace(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Halted {
		t.Fatal("switch program did not halt")
	}
	targets := map[int32]int{}
	for _, r := range recs {
		if r.Indirect {
			targets[r.Target]++
		}
	}
	if len(targets) != 4 {
		t.Fatalf("observed %d distinct switch targets, want 4", len(targets))
	}
	total := 0
	for _, n := range targets {
		total += n
	}
	for tgt, n := range targets {
		frac := float64(n) / float64(total)
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("case @%d frequency %.2f, want ~0.25 (uniform)", tgt, frac)
		}
	}
}

func TestBuilderDataLabel(t *testing.T) {
	b := NewBuilder("dl")
	addr := b.DataLabel("tgt")
	b.Li(1, addr)
	b.Load(2, 1, 0)
	b.Emit(isa.Inst{Op: isa.Jri, Src1: 2})
	b.Li(3, 99) // skipped by the jump
	b.Label("tgt")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	it := isa.NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if !it.Halted || it.Regs[3] != 0 {
		t.Errorf("indirect jump through data label failed: halted=%v r3=%d", it.Halted, it.Regs[3])
	}
}

func TestBuilderDataLabelUndefined(t *testing.T) {
	b := NewBuilder("dlu")
	b.DataLabel("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected undefined data label error")
	}
}

// TestSeedStability guards against seed-overfitting: the headline SEE
// result (go gains substantially) must hold across workload seeds, not
// just the one shipped in the suite.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation")
	}
	bm, err := ByName("go", 150_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{104, 1004, 20104} {
		spec := bm.Spec
		spec.Seed = seed
		p, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		rate, _, err := GshareMispredictRate(p, 11, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if rate < 0.15 || rate > 0.35 {
			t.Errorf("seed %d: go misprediction rate %.3f outside stable band", seed, rate)
		}
	}
}
