package workload

import (
	"math"
	"testing"
)

// TestCalibrationAgainstTable1 checks each synthetic benchmark's
// misprediction rate under the baseline gshare (11-bit history,
// the scaled baseline — see DESIGN.md) against
// the paper's Table 1 target. The tolerance is deliberately loose — the
// reproduction needs the ordering and rough magnitudes, not exact rates —
// but tight enough to catch a mix regression.
func TestCalibrationAgainstTable1(t *testing.T) {
	for _, b := range Suite(500_000) {
		b := b
		t.Run(b.Spec.Name, func(t *testing.T) {
			p, err := Generate(b.Spec)
			if err != nil {
				t.Fatal(err)
			}
			rate, n, err := GshareMispredictRate(p, 11, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			if n < 1000 {
				t.Fatalf("only %d dynamic branches; workload too small", n)
			}
			target := b.PaperMispredict
			t.Logf("%-9s measured %.2f%%  target %.2f%%  (%d branches)",
				b.Spec.Name, 100*rate, 100*target, n)
			// Accept within a factor band: [0.6x, 1.6x] plus 1pp absolute slack.
			lo := 0.6*target - 0.01
			hi := 1.6*target + 0.01
			if rate < lo || rate > hi {
				t.Errorf("misprediction rate %.2f%% outside calibration band [%.2f%%, %.2f%%]",
					100*rate, 100*lo, 100*hi)
			}
		})
	}
}

// TestSuiteOrderingMatchesTable1 verifies the relative ordering that the
// paper's analysis depends on: go is worst, vortex best, m88ksim and xlisp
// in the predictable low range.
func TestSuiteOrderingMatchesTable1(t *testing.T) {
	rates := map[string]float64{}
	for _, b := range Suite(500_000) {
		p, err := Generate(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		rate, _, err := GshareMispredictRate(p, 11, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		rates[b.Spec.Name] = rate
	}
	for name, r := range rates {
		if name == "go" {
			continue
		}
		if r >= rates["go"] {
			t.Errorf("go must have the highest misprediction rate; %s=%.3f >= go=%.3f", name, r, rates["go"])
		}
	}
	for name, r := range rates {
		if name == "vortex" {
			continue
		}
		if r <= rates["vortex"] {
			t.Errorf("vortex must have the lowest misprediction rate; %s=%.3f <= vortex=%.3f", name, r, rates["vortex"])
		}
	}
	if math.Abs(rates["m88ksim"]-0.042) > 0.035 {
		t.Errorf("m88ksim rate %.3f too far from 4.2%%", rates["m88ksim"])
	}
}
