package workload

import (
	"repro/internal/bpred"
	"repro/internal/isa"
)

// DefaultTargetInsts is the default dynamic instruction count per
// benchmark. The paper simulates 113M-553M instructions; this reproduction
// scales down (as the paper itself scaled its inputs) — all reported
// metrics converge well before this length for these generators.
const DefaultTargetInsts = 400_000

// Benchmark pairs a SPECint95 benchmark name with its synthetic stand-in
// spec. PaperMispredict is Table 1's misprediction rate, the calibration
// target.
type Benchmark struct {
	Spec            Spec
	PaperMispredict float64 // Table 1, fraction
	PaperMInsts     float64 // Table 1, millions of instructions (descriptive)
}

// Suite returns the eight SPECint95 stand-ins in the paper's Table 1
// order, each targeting the given dynamic instruction count (0 means
// DefaultTargetInsts).
//
// The branch mixes below were calibrated so that each program's
// misprediction rate under the baseline gshare predictor (14-bit history,
// 16k counters) approximates Table 1. The character of each mix also
// follows the paper's analysis: go is dominated by near-random branches
// (clustered mispredictions, high JRS PVN), m88ksim by moderately biased
// branches (isolated mispredictions, low JRS PVN — the paper's anomaly),
// vortex by highly structured loops.
func Suite(targetInsts uint64) []Benchmark {
	if targetInsts == 0 {
		targetInsts = DefaultTargetInsts
	}
	bern := func(p float64) BranchSpec { return BranchSpec{Kind: KindBernoulli, Bias: p} }
	pat := func(k int) BranchSpec { return BranchSpec{Kind: KindPattern, Period: k} }
	loop := func(t int) BranchSpec { return BranchSpec{Kind: KindLoop, Trip: t} }
	sw := func(k int) BranchSpec { return BranchSpec{Kind: KindSwitch, Fanout: k} }
	call := func(d int) BranchSpec { return BranchSpec{Kind: KindCall, CallDepth: d} }
	rep := func(n int, s BranchSpec) []BranchSpec {
		out := make([]BranchSpec, n)
		for i := range out {
			out[i] = s
		}
		return out
	}
	cat := func(groups ...[]BranchSpec) []BranchSpec {
		var out []BranchSpec
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}

	return []Benchmark{
		{
			PaperMispredict: 0.0913, PaperMInsts: 113.8,
			Spec: Spec{
				Name: "compress", Seed: 101, TargetInsts: targetInsts,
				Branches: cat(
					rep(2, bern(0.5)), rep(2, bern(0.8)),
					rep(2, pat(4)), rep(2, loop(5)),
				),
				BlockLen: 8, Chains: 6,
				LoadFrac: 0.20, StoreFrac: 0.08, MulFrac: 0.02,
				PredDepth: 6,
			},
		},
		{
			PaperMispredict: 0.1109, PaperMInsts: 334.1,
			Spec: Spec{
				Name: "gcc", Seed: 102, TargetInsts: targetInsts,
				Branches: cat(
					rep(2, bern(0.5)), rep(2, bern(0.85)),
					rep(2, pat(6)), rep(2, loop(5)),
					rep(1, sw(8)), rep(1, call(1)),
				),
				BlockLen: 6, Chains: 5,
				LoadFrac: 0.22, StoreFrac: 0.10, MulFrac: 0.01,
				PredDepth: 6,
			},
		},
		{
			PaperMispredict: 0.0827, PaperMInsts: 249.1,
			Spec: Spec{
				Name: "perl", Seed: 103, TargetInsts: targetInsts,
				Branches: cat(
					rep(1, bern(0.5)), rep(1, bern(0.65)), rep(2, bern(0.85)),
					rep(2, pat(5)), rep(2, loop(6)),
					rep(1, sw(6)), rep(1, call(2)),
				),
				BlockLen: 7, Chains: 5,
				LoadFrac: 0.20, StoreFrac: 0.10,
				PredDepth: 6,
			},
		},
		{
			PaperMispredict: 0.2480, PaperMInsts: 549.1,
			Spec: Spec{
				Name: "go", Seed: 104, TargetInsts: targetInsts,
				Branches: cat(
					rep(4, bern(0.5)), rep(2, bern(0.7)),
					rep(1, pat(4)), rep(2, loop(5)),
				),
				BlockLen: 6, Chains: 6,
				LoadFrac: 0.18, StoreFrac: 0.06,
				PredDepth: 8,
			},
		},
		{
			PaperMispredict: 0.0420, PaperMInsts: 552.7,
			Spec: Spec{
				Name: "m88ksim", Seed: 105, TargetInsts: targetInsts,
				Branches: cat(
					rep(10, bern(0.95)),
					rep(4, bern(0.995)),
				),
				BlockLen: 12, Chains: 8,
				LoadFrac: 0.10, StoreFrac: 0.05, MulFrac: 0.02,
				PredDepth: 4,
			},
		},
		{
			PaperMispredict: 0.0520, PaperMInsts: 216.1,
			Spec: Spec{
				Name: "xlisp", Seed: 106, TargetInsts: targetInsts,
				Branches: cat(
					rep(1, bern(0.5)), rep(2, bern(0.85)),
					rep(2, pat(6)), rep(3, loop(5)),
					rep(2, call(2)),
				),
				BlockLen: 5, Chains: 5,
				LoadFrac: 0.25, StoreFrac: 0.12, MulFrac: 0.04,
				PredDepth: 6,
			},
		},
		{
			PaperMispredict: 0.0185, PaperMInsts: 234.4,
			Spec: Spec{
				Name: "vortex", Seed: 107, TargetInsts: targetInsts,
				Branches: cat(
					rep(1, bern(0.55)),
					rep(2, pat(8)), rep(5, loop(6)),
				),
				BlockLen: 6, Chains: 4,
				LoadFrac: 0.22, StoreFrac: 0.12, MulFrac: 0.06,
				PredDepth: 6,
			},
		},
		{
			PaperMispredict: 0.0837, PaperMInsts: 347.0,
			Spec: Spec{
				Name: "jpeg", Seed: 108, TargetInsts: targetInsts,
				Branches: cat(
					rep(2, bern(0.5)), rep(1, bern(0.75)),
					rep(1, pat(4)), rep(3, loop(8)),
				),
				BlockLen: 10, Chains: 8,
				LoadFrac: 0.15, StoreFrac: 0.05, MulFrac: 0.04, FPFrac: 0.06,
				PredDepth: 5,
			},
		},
	}
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	s := Suite(1)
	names := make([]string, len(s))
	for i, b := range s {
		names[i] = b.Spec.Name
	}
	return names
}

// GshareMispredictRate replays the program's dynamic branch trace through
// a gshare predictor (trained at every branch, history updated with actual
// outcomes) and returns the misprediction rate. This is the calibration
// instrument for matching Table 1: it measures predictor-visible branch
// behaviour without the cost of a full pipeline simulation.
func GshareMispredictRate(p *isa.Program, histBits int, maxInsts uint64) (rate float64, branches int, err error) {
	recs, _, err := isa.Trace(p, maxInsts)
	if err != nil {
		return 0, 0, err
	}
	g := bpred.NewGshare(histBits)
	hist := uint64(0)
	miss := 0
	n := 0
	for _, r := range recs {
		if r.Indirect {
			continue // indirect jumps are BTB territory, not gshare's
		}
		n++
		pred := g.Predict(int(r.PC), hist)
		if pred != r.Taken {
			miss++
		}
		g.Update(int(r.PC), hist, r.Taken)
		hist = bpred.PushHistory(hist, r.Taken)
	}
	if n == 0 {
		return 0, 0, nil
	}
	return float64(miss) / float64(n), n, nil
}
