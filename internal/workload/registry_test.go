package workload

import (
	"errors"
	"strings"
	"testing"
)

func TestExtendedFamiliesGenerate(t *testing.T) {
	// Long enough to escape predictor warmup, which otherwise dominates
	// the near-zero-rate branchless family.
	for _, b := range Extended(250_000) {
		b := b
		t.Run(b.Spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := Generate(b.Spec)
			if err != nil {
				t.Fatal(err)
			}
			rate, _, err := GshareMispredictRate(p, 11, 250_000)
			if err != nil {
				t.Fatal(err)
			}
			// Sanity band around each family's design target: the taxonomy
			// placement (clustered / mixed / predictable) must hold.
			switch b.Spec.Name {
			case "ptrchase":
				if rate < 0.15 {
					t.Errorf("ptrchase rate %.4f; the pointer-chase family must stay hard to predict", rate)
				}
			case "interp-dispatch":
				if rate < 0.02 || rate > 0.20 {
					t.Errorf("interp-dispatch rate %.4f outside the mixed band", rate)
				}
			case "branchless":
				// The family's branch density is so low that table warmup
				// is still a visible share of this rate at this length.
				if rate > 0.03 {
					t.Errorf("branchless rate %.4f; the branchless family must be near-perfectly predictable", rate)
				}
			}
		})
	}
}

func TestByNameResolvesAllFamilies(t *testing.T) {
	for _, name := range AllNames() {
		b, err := ByName(name, 12_345)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if b.Spec.Name != name {
			t.Fatalf("ByName(%s) resolved %s", name, b.Spec.Name)
		}
		if b.Spec.TargetInsts != 12_345 {
			t.Fatalf("ByName(%s) did not apply the length override: %d", name, b.Spec.TargetInsts)
		}
	}
}

func TestByNameUnknownEnumerates(t *testing.T) {
	_, err := ByName("no-such-workload", 0)
	if err == nil {
		t.Fatal("unknown name must error")
	}
	for _, want := range []string{"compress", "go", "ptrchase", "branchless"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not enumerate %q", err, want)
		}
	}
}

func TestNamesStaysTableOne(t *testing.T) {
	// Names() feeds the default experiment tables and committed goldens:
	// suite growth must not leak into it.
	if n := len(Names()); n != 8 {
		t.Fatalf("Names() has %d entries, want the 8 Table 1 stand-ins", n)
	}
	for _, name := range Names() {
		if name == "ptrchase" || name == "interp-dispatch" || name == "branchless" {
			t.Fatalf("extended family %q leaked into Names()", name)
		}
	}
}

func TestRegisterLifecycle(t *testing.T) {
	spec := Spec{
		Name: "test-registered-family", Seed: 7, TargetInsts: 50_000,
		Branches: []BranchSpec{{Kind: KindBernoulli, Bias: 0.7}, {Kind: KindLoop, Trip: 8}},
		BlockLen: 4, Chains: 2,
	}
	if err := Register(Benchmark{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range Registered() {
		if n == spec.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("registered family missing from Registered()")
	}
	b, err := ByName(spec.Name, 99_000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec.TargetInsts != 99_000 {
		t.Fatalf("override not applied: %d", b.Spec.TargetInsts)
	}
	// Duplicate and collision registrations are rejected.
	if err := Register(Benchmark{Spec: spec}); err == nil {
		t.Fatal("duplicate registration must error")
	}
	dup := spec
	dup.Name = "compress"
	if err := Register(Benchmark{Spec: dup}); err == nil {
		t.Fatal("built-in collision must error")
	}
	bad := spec
	bad.Name = "test-bad-spec"
	bad.Branches = nil
	if err := Register(Benchmark{Spec: bad}); err == nil {
		t.Fatal("invalid spec must be rejected at registration")
	}
}

func TestCalibrateBiasReachesTarget(t *testing.T) {
	spec := Spec{
		Name: "cal-reachable", Seed: 11, TargetInsts: 120_000,
		Branches: []BranchSpec{
			{Kind: KindBernoulli, Bias: 0.6},
			{Kind: KindBernoulli, Bias: 0.8},
			{Kind: KindLoop, Trip: 8},
		},
		BlockLen: 4, Chains: 2,
	}
	cal, rate, err := CalibrateBias(spec, 0.06, 11, 120_000, 0.05)
	if err != nil {
		t.Fatalf("CalibrateBias: %v", err)
	}
	if rel := (rate - 0.06) / 0.06; rel > 0.05 || rel < -0.05 {
		t.Fatalf("calibrated rate %.4f misses target 0.06 by %+.1f%%", rate, 100*rel)
	}
	// Structure is untouched; only Bernoulli biases move.
	if cal.Branches[2] != spec.Branches[2] {
		t.Fatalf("calibration moved a structured site: %+v", cal.Branches[2])
	}
	if cal.Name != spec.Name || cal.Seed != spec.Seed {
		t.Fatalf("calibration changed identity: %+v", cal)
	}
}

func TestCalibrateBiasTypedError(t *testing.T) {
	// A single near-constant knob cannot reach a 40% misprediction target
	// at its ceiling; the error must be the typed near-miss, and the
	// returned spec the closest candidate, not a silent clamp.
	spec := Spec{
		Name: "cal-unreachable", Seed: 13, TargetInsts: 80_000,
		Branches: []BranchSpec{
			{Kind: KindLoop, Trip: 32},
			{Kind: KindLoop, Trip: 16},
			{Kind: KindLoop, Trip: 8},
			{Kind: KindBernoulli, Bias: 0.95},
		},
		BlockLen: 8, Chains: 4,
	}
	_, rate, err := CalibrateBias(spec, 0.40, 11, 80_000, 0.05)
	if err == nil {
		t.Fatalf("target 0.40 must be unreachable (got rate %.4f)", rate)
	}
	var ce *CalibrationError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not *CalibrationError", err)
	}
	if ce.Target != 0.40 || ce.Hi >= 0.40 || ce.Lo > ce.Hi || ce.Tolerance != 0.05 {
		t.Fatalf("near-miss fields: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "unreachable") {
		t.Fatalf("error text %q", ce.Error())
	}
	if rate != ce.Achieved {
		t.Fatalf("returned rate %.4f != Achieved %.4f", rate, ce.Achieved)
	}
}
