package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 3)
	b.Label("top")
	b.OpI(isa.Addi, 1, 1, -1)
	b.Branch(isa.Bne, 1, 0, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[2].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[2].Target)
	}
	it := isa.NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if !it.Halted || it.Regs[1] != 0 {
		t.Errorf("loop result r1=%d halted=%v", it.Regs[1], it.Halted)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("fwd")
	b.Li(1, 1)
	b.Branch(isa.Bne, 1, 0, "end")
	b.Li(2, 99)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	it := isa.NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[2] != 0 {
		t.Error("forward branch should skip the li")
	}
}

func TestBuilderJump(t *testing.T) {
	b := NewBuilder("jmp")
	b.Jump("over")
	b.Li(1, 1)
	b.Label("over")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	it := isa.NewInterp(p)
	if err := it.Run(10); err != nil {
		t.Fatal(err)
	}
	if it.Regs[1] != 0 {
		t.Error("jump should skip the li")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("l")
	b.Label("l")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate-label error")
	}
}

func TestBuilderBranchWithNonBranchOp(t *testing.T) {
	b := NewBuilder("nb")
	b.Branch(isa.Add, 1, 2, "x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected non-branch-op error")
	}
}

func TestBuilderDataPlacementAndMemorySizing(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Data([]int64{1, 2, 3})
	a2 := b.Data([]int64{4})
	if a1 != 0 || a2 != 3 {
		t.Errorf("data addresses %d, %d", a1, a2)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.MemWords&(p.MemWords-1) != 0 || p.MemWords < len(p.DataInit)+1024 {
		t.Errorf("memory sizing: %d words for %d data", p.MemWords, len(p.DataInit))
	}
	it := isa.NewInterp(p)
	if it.Mem[3] != 4 {
		t.Error("data not loaded into memory")
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder("pc")
	if b.PC() != 0 {
		t.Error("fresh builder PC")
	}
	b.Nop()
	if b.PC() != 1 {
		t.Error("PC after one instruction")
	}
}
