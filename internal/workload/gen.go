package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// BranchKind classifies the predictability character of a generated
// conditional branch.
type BranchKind int

const (
	// KindLoop is a counted inner loop's back edge: (trip-1) taken, one
	// not-taken, fully learnable by gshare.
	KindLoop BranchKind = iota
	// KindPattern is a periodic branch (T^(period-1) N repeating),
	// learnable once each history context trains.
	KindPattern
	// KindBernoulli is a data-driven branch whose outcome is an
	// independent Bernoulli(bias) draw from a pre-generated data stream —
	// unpredictable beyond its bias. Bias 0.5 models "go"-like chaotic
	// control flow; bias ~0.95 models m88ksim-like isolated mispredicts.
	KindBernoulli
	// KindSwitch is an indirect jump through a Fanout-entry jump table,
	// selecting a uniformly random case per iteration — gcc/perl-style
	// switch statements. The target is predicted by the BTB, not by the
	// direction predictor, and never diverges.
	KindSwitch
	// KindCall is a direct call to a generated function that does a block
	// of work and returns (CallDepth 2 adds a nested call to a shared
	// leaf). Returns are predicted by the return-address stack.
	KindCall
)

// BranchSpec describes one static conditional branch site in the generated
// program's main loop body.
type BranchSpec struct {
	Kind   BranchKind
	Bias   float64 // Bernoulli taken-probability
	Period int     // Pattern period (2..16)
	Trip   int     // Loop trip count (2..64)
	Fanout int     // Switch case count (2..16)
	// CallDepth is the nesting depth of a KindCall site (1 = leaf call,
	// 2 = the callee calls a shared second-level function).
	CallDepth int
	// PhaseLen, when positive on a Bernoulli branch, makes the branch
	// phased: the taken-probability alternates between Bias and Bias2
	// every PhaseLen stream positions (≈ PhaseLen loop iterations). This
	// models programs whose branch behaviour changes by program phase —
	// the m88ksim PVN anomaly the adaptive-policy experiments target.
	PhaseLen int
	// Bias2 is the second phase's taken-probability (required with
	// PhaseLen).
	Bias2 float64
}

// Spec parameterizes a synthetic benchmark.
type Spec struct {
	Name string
	Seed int64
	// TargetInsts is the approximate dynamic instruction count; the
	// generator solves for the outer-loop iteration count.
	TargetInsts uint64
	// Branches lists the static branch sites of one loop iteration.
	Branches []BranchSpec
	// BlockLen is the number of work instructions per diamond arm.
	BlockLen int
	// Chains is the number of independent dependence chains the work
	// blocks cycle through; it sets the workload's ILP.
	Chains int
	// LoadFrac/StoreFrac/MulFrac/FPFrac choose the instruction mix of the
	// work blocks (remaining fraction is 1-cycle integer ALU).
	LoadFrac, StoreFrac, MulFrac, FPFrac float64
	// PredDepth appends a chain of dependent ALU operations between a
	// Bernoulli branch's stream load and the branch itself, modelling the
	// data-dependence depth of real SPECint predicates. It lengthens
	// branch resolution latency (and thus the misprediction penalty)
	// without changing the branch's outcome distribution.
	PredDepth int
}

// Register conventions used by the generator.
const (
	rOuter      = isa.Reg(1)  // outer loop down-counter
	rStream     = isa.Reg(2)  // data-stream index (per-iteration)
	rPred       = isa.Reg(3)  // predicate scratch
	rInner      = isa.Reg(4)  // inner loop counter
	rTmp        = isa.Reg(5)  // pattern compare scratch
	rScratch    = isa.Reg(6)  // scratch memory base
	rMask       = isa.Reg(7)  // stream wrap mask
	rChain0     = isa.Reg(8)  // first of Chains chain registers (8..15)
	rPat0       = isa.Reg(16) // first pattern counter (16..23)
	rLink1      = isa.Reg(24) // level-1 call link register
	rLink2      = isa.Reg(25) // level-2 (leaf) call link register
	maxChains   = 8
	maxPatterns = 8

	streamWords  = 1 << 14 // per-branch Bernoulli stream length (wraps)
	scratchWords = 512     // scratch read/write area for work blocks
)

// Generate builds the synthetic program for spec. It runs a short pilot
// build to measure instructions per iteration, then rebuilds with the
// iteration count that meets TargetInsts.
func Generate(spec Spec) (*isa.Program, error) {
	if err := checkSpec(spec); err != nil {
		return nil, err
	}
	pilot, err := build(spec, 4)
	if err != nil {
		return nil, err
	}
	it := isa.NewInterp(pilot)
	if err := it.Run(1 << 24); err != nil {
		return nil, fmt.Errorf("workload: pilot run: %w", err)
	}
	if !it.Halted {
		return nil, fmt.Errorf("workload: pilot run did not halt")
	}
	perIter := it.InstCount / 4
	if perIter == 0 {
		perIter = 1
	}
	iters := int(spec.TargetInsts / perIter)
	if iters < 8 {
		iters = 8
	}
	return build(spec, iters)
}

// MustGenerate is Generate that panics on error; generator specs are
// compile-time constants in this repo, so errors are programming mistakes.
func MustGenerate(spec Spec) *isa.Program {
	p, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func checkSpec(spec Spec) error {
	if spec.TargetInsts == 0 {
		return fmt.Errorf("workload: %s: TargetInsts must be positive", spec.Name)
	}
	if spec.Chains < 1 || spec.Chains > maxChains {
		return fmt.Errorf("workload: %s: Chains %d out of range [1,%d]", spec.Name, spec.Chains, maxChains)
	}
	if spec.BlockLen < 1 {
		return fmt.Errorf("workload: %s: BlockLen must be positive", spec.Name)
	}
	if spec.PredDepth < 0 || spec.PredDepth > 32 {
		return fmt.Errorf("workload: %s: PredDepth %d out of [0,32]", spec.Name, spec.PredDepth)
	}
	patterns := 0
	for i, b := range spec.Branches {
		switch b.Kind {
		case KindBernoulli:
			if b.Bias <= 0 || b.Bias >= 1 {
				return fmt.Errorf("workload: %s: branch %d: bias %v out of (0,1)", spec.Name, i, b.Bias)
			}
			if b.PhaseLen < 0 || b.PhaseLen > streamWords/2 {
				return fmt.Errorf("workload: %s: branch %d: phase length %d out of [0,%d]", spec.Name, i, b.PhaseLen, streamWords/2)
			}
			if b.PhaseLen > 0 && (b.Bias2 <= 0 || b.Bias2 >= 1) {
				return fmt.Errorf("workload: %s: branch %d: phase bias %v out of (0,1)", spec.Name, i, b.Bias2)
			}
			if b.PhaseLen == 0 && b.Bias2 != 0 {
				return fmt.Errorf("workload: %s: branch %d: Bias2 set without PhaseLen", spec.Name, i)
			}
		case KindPattern:
			if b.Period < 2 || b.Period > 16 {
				return fmt.Errorf("workload: %s: branch %d: period %d out of [2,16]", spec.Name, i, b.Period)
			}
			patterns++
		case KindLoop:
			if b.Trip < 2 || b.Trip > 64 {
				return fmt.Errorf("workload: %s: branch %d: trip %d out of [2,64]", spec.Name, i, b.Trip)
			}
		case KindSwitch:
			if b.Fanout < 2 || b.Fanout > 16 {
				return fmt.Errorf("workload: %s: branch %d: fanout %d out of [2,16]", spec.Name, i, b.Fanout)
			}
		case KindCall:
			if b.CallDepth < 1 || b.CallDepth > 2 {
				return fmt.Errorf("workload: %s: branch %d: call depth %d out of [1,2]", spec.Name, i, b.CallDepth)
			}
		default:
			return fmt.Errorf("workload: %s: branch %d: unknown kind %d", spec.Name, i, b.Kind)
		}
	}
	if patterns > maxPatterns {
		return fmt.Errorf("workload: %s: at most %d pattern branches supported", spec.Name, maxPatterns)
	}
	if len(spec.Branches) == 0 {
		return fmt.Errorf("workload: %s: need at least one branch", spec.Name)
	}
	return nil
}

func build(spec Spec, iterations int) (*isa.Program, error) {
	b := NewBuilder(spec.Name)
	rng := rand.New(rand.NewSource(spec.Seed))

	// Data segment: one Bernoulli stream per data-driven branch, then the
	// scratch area.
	streamBase := make([]int64, len(spec.Branches))
	for i, br := range spec.Branches {
		switch br.Kind {
		case KindBernoulli:
			words := make([]int64, streamWords)
			for w := range words {
				// Phased branches alternate between Bias and Bias2 every
				// PhaseLen positions; exactly one draw per word either way,
				// so adding a phase never perturbs the other branches'
				// streams for the same seed.
				bias := br.Bias
				if br.PhaseLen > 0 && (w/br.PhaseLen)%2 == 1 {
					bias = br.Bias2
				}
				if rng.Float64() < bias {
					words[w] = 1
				}
			}
			streamBase[i] = b.Data(words)
		case KindSwitch:
			words := make([]int64, streamWords)
			for w := range words {
				words[w] = int64(rng.Intn(br.Fanout))
			}
			streamBase[i] = b.Data(words)
		}
	}
	scratchBase := b.Data(make([]int64, scratchWords))

	// Prologue.
	b.Li(rOuter, int64(iterations))
	b.Li(rStream, 0)
	b.Li(rMask, streamWords-1)
	b.Li(rScratch, scratchBase)
	for c := 0; c < spec.Chains; c++ {
		b.Li(rChain0+isa.Reg(c), int64(rng.Intn(1000)+1))
	}
	patIdx := 0
	for _, br := range spec.Branches {
		if br.Kind == KindPattern {
			b.Li(rPat0+isa.Reg(patIdx), 0)
			patIdx++
		}
	}

	b.Label("outer")
	patIdx = 0
	w := &workEmitter{b: b, spec: spec, rng: rng, lastStore: -1}
	type genFunc struct {
		name  string
		depth int
	}
	var funcs []genFunc
	needLeaf := false
	for i, br := range spec.Branches {
		then := fmt.Sprintf("then_%d", i)
		join := fmt.Sprintf("join_%d", i)
		switch br.Kind {
		case KindBernoulli:
			// rPred = stream[streamBase + rStream]; branch taken iff 1.
			// The dependent tail (rPred += rPred) preserves zero-ness, so
			// the outcome is still the Bernoulli draw, but the branch can
			// only resolve PredDepth cycles after the load returns.
			b.Load(rPred, rStream, streamBase[i])
			for d := 0; d < spec.PredDepth; d++ {
				b.Op3(isa.Add, rPred, rPred, rPred)
			}
			b.Branch(isa.Bne, rPred, 0, then)
		case KindPattern:
			pc := rPat0 + isa.Reg(patIdx)
			patIdx++
			// counter++; taken while counter % period != 0:
			//   tmp = (counter < period) after increment; on not-taken
			//   reset the counter.
			b.OpI(isa.Addi, pc, pc, 1)
			b.OpI(isa.Slti, rTmp, pc, int64(br.Period))
			b.Branch(isa.Bne, rTmp, 0, then)
			b.Li(pc, 0) // not-taken arm begins with the reset
		case KindCall:
			// A call site: the function body is emitted after Halt.
			name := fmt.Sprintf("fn_%d", i)
			funcs = append(funcs, genFunc{name: name, depth: br.CallDepth})
			if br.CallDepth == 2 {
				needLeaf = true
			}
			b.Call(rLink1, name)
			continue
		case KindSwitch:
			// switch (stream[i]) { case 0..Fanout-1 }: load the case
			// index, index the jump table, and jump indirectly. Each case
			// arm does a short block of work and rejoins.
			table := make([]int64, br.Fanout)
			for c := range table {
				table[c] = b.DataLabel(fmt.Sprintf("case_%d_%d", i, c))
			}
			b.Load(rPred, rStream, streamBase[i])   // case index
			b.OpI(isa.Addi, rPred, rPred, table[0]) // table address
			b.Load(rPred, rPred, 0)                 // target PC
			b.Emit(isa.Inst{Op: isa.Jri, Src1: rPred})
			for c := 0; c < br.Fanout; c++ {
				b.Label(fmt.Sprintf("case_%d_%d", i, c))
				w.emit(spec.BlockLen / 2)
				b.Jump(join)
			}
			b.Label(join)
			continue
		case KindLoop:
			// A counted inner loop; its back edge is the branch site. The
			// body carries half a diamond arm's worth of work so the
			// instruction-mix knobs shape loop-dominated benchmarks too.
			body := spec.BlockLen / 2
			if body < 2 {
				body = 2
			}
			b.Li(rInner, int64(br.Trip))
			b.Label(fmt.Sprintf("inner_%d", i))
			w.emitLight(body)
			b.OpI(isa.Addi, rInner, rInner, -1)
			b.Branch(isa.Bne, rInner, 0, fmt.Sprintf("inner_%d", i))
			// Loops have no diamond arms; continue to next site.
			continue
		}
		// Not-taken (fall-through) arm.
		w.emit(spec.BlockLen)
		b.Jump(join)
		b.Label(then)
		w.emit(spec.BlockLen)
		b.Label(join)
	}
	// Iteration epilogue: advance stream index (with wrap), decrement.
	b.OpI(isa.Addi, rStream, rStream, 1)
	b.Op3(isa.And, rStream, rStream, rMask)
	b.OpI(isa.Addi, rOuter, rOuter, -1)
	b.Branch(isa.Bne, rOuter, 0, "outer")
	// Fold chain results into memory so the work is observable state.
	for c := 0; c < spec.Chains; c++ {
		b.Store(rChain0+isa.Reg(c), rScratch, int64(c))
	}
	b.Halt()
	// Function bodies live after the halt; only calls reach them.
	for _, fn := range funcs {
		b.Label(fn.name)
		w.emit(spec.BlockLen)
		if fn.depth == 2 {
			b.Call(rLink2, "leaf")
			w.emit(2)
		}
		b.Ret(rLink1)
	}
	if needLeaf {
		b.Label("leaf")
		w.emit(spec.BlockLen / 2)
		b.Ret(rLink2)
	}
	return b.Build()
}

// workEmitter emits straight-line work instructions cycling across the
// independent chains, with the spec's instruction mix.
type workEmitter struct {
	b     *Builder
	spec  Spec
	rng   *rand.Rand
	chain int
	slot  int64 // rotating scratch offset for loads/stores
	// lastStore remembers the most recent store's slot so that some loads
	// reload it shortly afterwards (a spill/reload pair), exercising the
	// store buffer's CTX-filtered forwarding path.
	lastStore int64
}

func (w *workEmitter) next() isa.Reg {
	r := rChain0 + isa.Reg(w.chain)
	w.chain = (w.chain + 1) % w.spec.Chains
	return r
}

func (w *workEmitter) other(not isa.Reg) isa.Reg {
	r := rChain0 + isa.Reg(w.rng.Intn(w.spec.Chains))
	if r == not {
		r = rChain0 + isa.Reg((int(not-rChain0)+1)%w.spec.Chains)
	}
	return r
}

// emitLight emits loop-body work: short-latency operations only (integer
// ALU and chain-resetting loads), as tight inner loops in real code rarely
// carry multiplies or FP down their critical path.
func (w *workEmitter) emitLight(n int) {
	for i := 0; i < n; i++ {
		r := w.next()
		switch w.rng.Intn(4) {
		case 0:
			w.slot = (w.slot + 7) % scratchWords
			w.b.Load(r, rScratch, w.slot)
		case 1:
			w.b.Op3(isa.Add, r, r, w.other(r))
		case 2:
			w.b.OpI(isa.Addi, r, r, int64(w.rng.Intn(64)+1))
		default:
			w.b.OpI(isa.Xori, r, r, int64(w.rng.Intn(255)+1))
		}
	}
}

func (w *workEmitter) emit(n int) {
	for i := 0; i < n; i++ {
		r := w.next()
		x := w.rng.Float64()
		sp := w.spec
		switch {
		case x < sp.LoadFrac:
			if w.lastStore >= 0 && w.rng.Intn(2) == 0 {
				w.b.Load(r, rScratch, w.lastStore) // reload a recent spill
				w.lastStore = -1
			} else {
				w.slot = (w.slot + 7) % scratchWords
				w.b.Load(r, rScratch, w.slot)
			}
		case x < sp.LoadFrac+sp.StoreFrac:
			w.slot = (w.slot + 13) % scratchWords
			w.b.Store(r, rScratch, w.slot)
			w.lastStore = w.slot
		case x < sp.LoadFrac+sp.StoreFrac+sp.MulFrac:
			w.b.Op3(isa.Mul, r, r, w.other(r))
		case x < sp.LoadFrac+sp.StoreFrac+sp.MulFrac+sp.FPFrac:
			op := isa.FAdd
			if w.rng.Intn(2) == 0 {
				op = isa.FMul
			}
			w.b.Op3(op, r, r, w.other(r))
		default:
			// Integer ALU: mostly chain-local to create real dependence
			// chains, occasionally cross-chain.
			switch w.rng.Intn(5) {
			case 0:
				w.b.Op3(isa.Add, r, r, w.other(r))
			case 1:
				w.b.Op3(isa.Xor, r, r, w.other(r))
			case 2:
				w.b.OpI(isa.Addi, r, r, int64(w.rng.Intn(64)+1))
			case 3:
				w.b.OpI(isa.Shri, r, r, 1)
			default:
				w.b.OpI(isa.Xori, r, r, int64(w.rng.Intn(255)+1))
			}
		}
	}
}
