package workload

import (
	"fmt"
	"math"
)

// CalibrationError reports that closed-loop calibration could not reach
// the target misprediction rate for the given branch mix. It carries the
// achievable range so callers (polychar) can explain *why*: a mix with no
// Bernoulli branches has a fixed rate; a mix whose random component is
// too small cannot reach a high target no matter how the biases scale.
type CalibrationError struct {
	Name   string  // spec name
	Target float64 // requested gshare misprediction rate
	// Achieved is the closest rate reached by any evaluated candidate.
	Achieved float64
	// Lo, Hi bound the achievable rate range for this mix (Lo at maximum
	// bias, Hi at bias 0.5 for every Bernoulli site).
	Lo, Hi float64
	// Tolerance is the relative tolerance that was not met.
	Tolerance float64
}

func (e *CalibrationError) Error() string {
	return fmt.Sprintf(
		"workload: %s: target misprediction rate %.4f unreachable (achievable [%.4f, %.4f], closest %.4f, tolerance ±%.0f%%)",
		e.Name, e.Target, e.Lo, e.Hi, e.Achieved, 100*e.Tolerance)
}

// relErr is the relative calibration error, with an absolute floor so
// near-zero targets (branchless workloads) don't demand impossible
// precision.
func relErr(rate, target float64) float64 {
	return math.Abs(rate-target) / math.Max(target, 0.002)
}

// scaleBiases returns spec with every Bernoulli bias magnitude scaled by
// s around 0.5: magnitude' = 0.5 + (magnitude-0.5)*s, direction
// preserved, capped at 0.995. s=0 makes every data-driven branch a coin
// flip (maximum misprediction); large s pushes every site toward fully
// biased (minimum). Branch slices are copied; the input is not mutated.
func scaleBiases(spec Spec, s float64) Spec {
	out := spec
	out.Branches = append([]BranchSpec(nil), spec.Branches...)
	for i, br := range out.Branches {
		if br.Kind != KindBernoulli {
			continue
		}
		mag := math.Max(br.Bias, 1-br.Bias)
		mag = 0.5 + (mag-0.5)*s
		if mag > 0.995 {
			mag = 0.995
		}
		if mag < 0.5 {
			mag = 0.5
		}
		if br.Bias >= 0.5 {
			out.Branches[i].Bias = mag
		} else {
			out.Branches[i].Bias = 1 - mag
		}
	}
	return out
}

// measureRate generates the spec and measures its gshare misprediction
// rate at histBits over maxInsts dynamic instructions.
func measureRate(spec Spec, histBits int, maxInsts uint64) (float64, error) {
	p, err := Generate(spec)
	if err != nil {
		return 0, err
	}
	rate, _, err := GshareMispredictRate(p, histBits, maxInsts)
	return rate, err
}

// CalibrateBias closed-loops the spec's Bernoulli bias magnitudes against
// the gshare instrument until the generated program's misprediction rate
// at histBits matches target within relTol (relative, with a 0.002
// absolute floor). It bisects a single scaling knob — the misprediction
// rate is monotone in how far the biases sit from 0.5 — re-generating and
// re-measuring each candidate, and returns the calibrated spec plus its
// measured rate.
//
// When the target is outside the mix's achievable range (or the loop
// cannot close within the iteration budget), it returns the best
// candidate found and a *CalibrationError describing the achievable
// range — never a silently clamped spec.
func CalibrateBias(spec Spec, target float64, histBits int, maxInsts uint64, relTol float64) (Spec, float64, error) {
	if relTol <= 0 {
		relTol = 0.05
	}
	if maxInsts == 0 {
		maxInsts = spec.TargetInsts
	}
	fail := func(achieved, lo, hi float64) *CalibrationError {
		return &CalibrationError{
			Name: spec.Name, Target: target,
			Achieved: achieved, Lo: lo, Hi: hi, Tolerance: relTol,
		}
	}

	hasBern := false
	for _, br := range spec.Branches {
		if br.Kind == KindBernoulli {
			hasBern = true
			break
		}
	}
	base, err := measureRate(spec, histBits, maxInsts)
	if err != nil {
		return spec, 0, err
	}
	if relErr(base, target) <= relTol {
		return spec, base, nil
	}
	if !hasBern {
		// No knob to turn: the rate is whatever the structured branches
		// give. Report the fixed point as the achievable range.
		return spec, base, fail(base, base, base)
	}

	// Bracket the target. s=0: all coin flips (hi end of the range);
	// s=sMax: maximally biased (lo end). sMax 10 saturates the 0.995 cap
	// for any starting magnitude > 0.55.
	const sMax = 10.0
	hiRate, err := measureRate(scaleBiases(spec, 0), histBits, maxInsts)
	if err != nil {
		return spec, 0, err
	}
	loRate, err := measureRate(scaleBiases(spec, sMax), histBits, maxInsts)
	if err != nil {
		return spec, 0, err
	}
	bestSpec, bestRate := spec, base
	consider := func(s Spec, r float64) {
		if relErr(r, target) < relErr(bestRate, target) {
			bestSpec, bestRate = s, r
		}
	}
	consider(scaleBiases(spec, 0), hiRate)
	consider(scaleBiases(spec, sMax), loRate)
	if relErr(bestRate, target) <= relTol {
		return bestSpec, bestRate, nil
	}
	if target > hiRate || target < loRate {
		return bestSpec, bestRate, fail(bestRate, loRate, hiRate)
	}

	// Bisect on s: rate is monotone non-increasing in s.
	lo, hi := 0.0, sMax
	for i := 0; i < 18; i++ {
		mid := (lo + hi) / 2
		cand := scaleBiases(spec, mid)
		r, err := measureRate(cand, histBits, maxInsts)
		if err != nil {
			return spec, 0, err
		}
		consider(cand, r)
		if relErr(r, target) <= relTol {
			return cand, r, nil
		}
		if r > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	if relErr(bestRate, target) <= relTol {
		return bestSpec, bestRate, nil
	}
	return bestSpec, bestRate, fail(bestRate, loRate, hiRate)
}
