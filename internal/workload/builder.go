// Package workload generates the synthetic SPECint95-like programs used to
// evaluate the PolyPath architecture. Real SPECint95 Alpha binaries are not
// available to this reproduction, so each benchmark is replaced by an
// execution-driven synthetic program whose control-flow behaviour —
// branch misprediction rate under the baseline gshare predictor and the
// clustering structure of mispredictions that determines JRS confidence
// PVN — is calibrated to the paper's Table 1. See DESIGN.md for the full
// substitution argument.
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Builder assembles a Program with symbolic labels, so generators can emit
// structured control flow without tracking instruction indices by hand.
type Builder struct {
	name       string
	code       []isa.Inst
	labels     map[string]int
	fixups     []fixup
	dataFixups []dataFixup
	data       []int64
	errs       []error
}

type fixup struct {
	pc    int
	label string
}

type dataFixup struct {
	idx   int
	label string
}

// NewBuilder creates an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Label defines a label at the current position. Defining a label twice is
// an error reported by Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("workload: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.code = append(b.code, in) }

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op isa.Op, dst, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// OpI emits a register-immediate ALU operation.
func (b *Builder) OpI(op isa.Op, dst, s1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src1: s1, Imm: imm})
}

// Li emits a load-immediate.
func (b *Builder) Li(dst isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.Li, Dst: dst, Imm: imm})
}

// Load emits dst = mem[base+imm].
func (b *Builder) Load(dst, base isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.Load, Dst: dst, Src1: base, Imm: imm})
}

// Store emits mem[base+imm] = src.
func (b *Builder) Store(src, base isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.Store, Src1: base, Src2: src, Imm: imm})
}

// Branch emits a conditional branch to a label (resolved at Build time).
func (b *Builder) Branch(op isa.Op, s1, s2 isa.Reg, label string) {
	if !op.IsCondBranch() {
		b.errs = append(b.errs, fmt.Errorf("workload: Branch with non-branch op %v", op))
		return
	}
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.Emit(isa.Inst{Op: op, Src1: s1, Src2: s2})
}

// Jump emits an unconditional jump to a label.
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.Emit(isa.Inst{Op: isa.Jmp})
}

// Call emits a direct call to a label, writing the return address into
// link.
func (b *Builder) Call(link isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.Emit(isa.Inst{Op: isa.Call, Dst: link})
}

// Ret emits a function return through link.
func (b *Builder) Ret(link isa.Reg) {
	b.Emit(isa.Inst{Op: isa.Ret, Src1: link})
}

// Halt emits the terminator.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.Halt}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.Nop}) }

// Data appends words to the data segment and returns the word address of
// the first appended word.
func (b *Builder) Data(words []int64) int64 {
	addr := int64(len(b.data))
	b.data = append(b.data, words...)
	return addr
}

// DataLabel appends a data word that will hold the instruction address of
// label once Build resolves it — the building block for switch jump
// tables. It returns the word's address.
func (b *Builder) DataLabel(label string) int64 {
	addr := int64(len(b.data))
	b.dataFixups = append(b.dataFixups, dataFixup{idx: len(b.data), label: label})
	b.data = append(b.data, 0)
	return addr
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.code) }

// Build resolves labels, sizes memory to the next power of two above the
// data segment (with headroom for scratch space), validates, and returns
// the program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("workload: undefined label %q", f.label)
		}
		b.code[f.pc].Target = int32(target)
	}
	for _, f := range b.dataFixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("workload: undefined data label %q", f.label)
		}
		b.data[f.idx] = int64(target)
	}
	memWords := 1
	for memWords < len(b.data)+1024 {
		memWords <<= 1
	}
	p := &isa.Program{
		Name:     b.name,
		Code:     b.code,
		DataInit: b.data,
		MemWords: memWords,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
