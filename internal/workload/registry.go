package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Extended returns the workload families beyond the paper's Table 1
// stand-ins, in registration order. These grow the suite along the axes
// of the predictability taxonomy (bias, history depth, misprediction
// clustering) rather than mimicking specific SPECint95 programs:
//
//   - ptrchase: pointer-chasing list/tree traversal. Load-dominated, low
//     ILP (two dependence chains), data-dependent branches that resolve
//     only after a deep load+ALU chain — near-random outcomes, so
//     mispredictions are frequent and clustered (go-like end of Figure 8)
//     with a long resolution latency that magnifies the penalty.
//   - interp-dispatch: a bytecode-interpreter main loop. A 16-way indirect
//     dispatch switch (BTB territory), opcode-dependent conditional
//     branches of moderate bias, and a call per "opcode" — gcc/perl-like
//     mixed behaviour.
//   - branchless: a branchless/SIMD-style streaming kernel. Long counted
//     loops around wide arithmetic blocks; essentially every branch is a
//     learnable back edge, so the misprediction rate is near zero
//     (vortex-beyond end of the spectrum; stresses everything except the
//     predictor).
//   - m88ksim-phased: the m88ksim PVN-anomaly stand-in with program
//     phases. Its data-driven branches alternate every 256 iterations
//     between the m88ksim character (bias 0.95: isolated mispredictions,
//     low PVN, where eager execution is mostly overhead) and a chaotic
//     phase (bias 0.55: clustered mispredictions where divergence pays).
//     No fixed policy wins both phases — the showcase workload for the
//     fig-adaptive experiment family.
func Extended(targetInsts uint64) []Benchmark {
	if targetInsts == 0 {
		targetInsts = DefaultTargetInsts
	}
	return []Benchmark{
		{
			PaperMispredict: 0.22, // design target, not Table 1
			Spec: Spec{
				Name: "ptrchase", Seed: 201, TargetInsts: targetInsts,
				Branches: []BranchSpec{
					{Kind: KindBernoulli, Bias: 0.5},
					{Kind: KindBernoulli, Bias: 0.5},
					{Kind: KindBernoulli, Bias: 0.45},
					{Kind: KindBernoulli, Bias: 0.6},
					{Kind: KindLoop, Trip: 4},
				},
				BlockLen: 5, Chains: 2,
				LoadFrac: 0.45, StoreFrac: 0.04,
				PredDepth: 12,
			},
		},
		{
			PaperMispredict: 0.08, // design target, not Table 1
			Spec: Spec{
				Name: "interp-dispatch", Seed: 202, TargetInsts: targetInsts,
				Branches: []BranchSpec{
					{Kind: KindSwitch, Fanout: 16},
					{Kind: KindBernoulli, Bias: 0.75},
					{Kind: KindBernoulli, Bias: 0.9},
					{Kind: KindPattern, Period: 6},
					{Kind: KindCall, CallDepth: 1},
					{Kind: KindLoop, Trip: 8},
				},
				BlockLen: 6, Chains: 4,
				LoadFrac: 0.28, StoreFrac: 0.10,
				PredDepth: 5,
			},
		},
		{
			PaperMispredict: 0.004, // design target, not Table 1
			Spec: Spec{
				Name: "branchless", Seed: 203, TargetInsts: targetInsts,
				Branches: []BranchSpec{
					{Kind: KindLoop, Trip: 64},
					{Kind: KindLoop, Trip: 48},
					{Kind: KindLoop, Trip: 32},
				},
				BlockLen: 24, Chains: 8,
				LoadFrac: 0.12, StoreFrac: 0.06, MulFrac: 0.10, FPFrac: 0.15,
				PredDepth: 0,
			},
		},
		{
			PaperMispredict: 0.042, // phase A target; phase B is far worse by design
			Spec: Spec{
				Name: "m88ksim-phased", Seed: 204, TargetInsts: targetInsts,
				Branches: []BranchSpec{
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.55, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.55, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.55, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.55, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.60, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.95, Bias2: 0.60, PhaseLen: 256},
					{Kind: KindBernoulli, Bias: 0.97},
					{Kind: KindBernoulli, Bias: 0.97},
					{Kind: KindBernoulli, Bias: 0.995},
					{Kind: KindBernoulli, Bias: 0.995},
				},
				BlockLen: 12, Chains: 8,
				LoadFrac: 0.10, StoreFrac: 0.05, MulFrac: 0.02,
				PredDepth: 4,
			},
		},
	}
}

// registry holds runtime-registered workload families (trace-derived
// workloads register here so harness cells can resolve them by name).
var registry = struct {
	sync.Mutex
	byName map[string]Benchmark
	order  []string
}{byName: make(map[string]Benchmark)}

// Register adds a runtime workload family resolvable via ByName. The
// benchmark's Spec.TargetInsts is treated as a default: ByName callers
// passing a non-zero targetInsts override it. Registering a name that
// collides with a built-in family or an existing registration is an error.
func Register(b Benchmark) error {
	name := b.Spec.Name
	if name == "" {
		return fmt.Errorf("workload: register: empty name")
	}
	if err := CheckSpec(b.Spec); err != nil {
		return fmt.Errorf("workload: register %q: %w", name, err)
	}
	for _, built := range builtinNames() {
		if built == name {
			return fmt.Errorf("workload: register %q: collides with built-in family", name)
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("workload: register %q: already registered", name)
	}
	registry.byName[name] = b
	registry.order = append(registry.order, name)
	return nil
}

// Registered returns the names of runtime-registered families in
// registration order.
func Registered() []string {
	registry.Lock()
	defer registry.Unlock()
	return append([]string(nil), registry.order...)
}

func builtinNames() []string {
	names := Names()
	for _, b := range Extended(1) {
		names = append(names, b.Spec.Name)
	}
	return names
}

// AllNames returns every resolvable workload name: the Table 1 suite in
// table order, the extended families, then runtime registrations. Names()
// remains the Table 1 set — default experiment tables are unchanged by
// suite growth.
func AllNames() []string {
	return append(builtinNames(), Registered()...)
}

// ByName resolves a workload family by name: Table 1 suite, then extended
// families, then runtime registrations. targetInsts overrides the spec's
// dynamic length when non-zero. Unknown names enumerate everything
// registered, the same UX as the model registry.
func ByName(name string, targetInsts uint64) (Benchmark, error) {
	for _, b := range Suite(targetInsts) {
		if b.Spec.Name == name {
			return b, nil
		}
	}
	for _, b := range Extended(targetInsts) {
		if b.Spec.Name == name {
			return b, nil
		}
	}
	registry.Lock()
	b, ok := registry.byName[name]
	registry.Unlock()
	if ok {
		if targetInsts != 0 {
			b.Spec.TargetInsts = targetInsts
		}
		return b, nil
	}
	all := AllNames()
	sort.Strings(all)
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (registered: %s)", name, strings.Join(all, ", "))
}

// CheckSpec validates a workload spec without generating it. Inline specs
// arriving over the wire (polyserve trace-derived cells) are validated
// with this before Generate.
func CheckSpec(spec Spec) error { return checkSpec(spec) }
