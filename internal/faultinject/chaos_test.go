package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func chaosMachine(t *testing.T) *pipeline.Machine {
	t.Helper()
	b, err := workload.ByName("compress", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Audit = pipeline.AuditCycle
	m, err := pipeline.New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEveryFaultKindIsContained is the core chaos contract: each
// micro-architectural fault kind, injected into a real workload under
// per-cycle auditing, must surface as a typed *pipeline.MachineCheckError —
// never an uncontained panic, never a silent completion.
func TestEveryFaultKindIsContained(t *testing.T) {
	kinds := []pipeline.Fault{
		pipeline.FaultRenameBitFlip,
		pipeline.FaultRenameMapFlip,
		pipeline.FaultDropWakeup,
		pipeline.FaultFreeListFlip,
		pipeline.FaultCtxTagFlip,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			m := chaosMachine(t)
			in := NewPlannedInjector(Plan{Kind: kind, AfterCycle: 100, Arg: 0x9e3779b97f4a7c15})
			in.Arm(m)
			err := m.Run()
			if !in.Injected() {
				t.Fatalf("%s: fault never landed", kind)
			}
			var mce *pipeline.MachineCheckError
			if !errors.As(err, &mce) {
				t.Fatalf("%s: want *MachineCheckError, got %v", kind, err)
			}
			if mce.Check == "" || mce.Cycle == 0 {
				t.Fatalf("%s: machine check missing context: %+v", kind, mce)
			}
		})
	}
}

// TestSeededInjectorsDeterministic runs a range of seeds and requires (a)
// every landed fault to be contained as a machine check and (b) the same
// seed to reproduce the identical failure — check name, cycle and detail.
func TestSeededInjectorsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		run := func() (Plan, bool, error) {
			m := chaosMachine(t)
			in := NewInjector(seed)
			in.Arm(m)
			err := m.Run()
			return in.Plan(), in.Injected(), err
		}
		plan1, landed1, err1 := run()
		plan2, landed2, err2 := run()
		if plan1 != plan2 {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, plan1, plan2)
		}
		if landed1 != landed2 {
			t.Fatalf("seed %d: landed %v vs %v", seed, landed1, landed2)
		}
		if !landed1 {
			continue // this seed's window never found a victim; acceptable
		}
		var mce1, mce2 *pipeline.MachineCheckError
		if !errors.As(err1, &mce1) || !errors.As(err2, &mce2) {
			t.Fatalf("seed %d: want machine checks, got %v / %v", seed, err1, err2)
		}
		if mce1.Check != mce2.Check || mce1.Cycle != mce2.Cycle || mce1.Detail != mce2.Detail {
			t.Fatalf("seed %d not reproducible: [%s c%d %q] vs [%s c%d %q]",
				seed, mce1.Check, mce1.Cycle, mce1.Detail, mce2.Check, mce2.Cycle, mce2.Detail)
		}
	}
}

func TestTornWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := &TornWriter{W: &buf, Limit: 10}
	if n, err := tw.Write([]byte("01234")); n != 5 || err != nil {
		t.Fatalf("pre-tear write: n=%d err=%v", n, err)
	}
	n, err := tw.Write([]byte("56789abcdef"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("tearing write: n=%d err=%v", n, err)
	}
	if !tw.Torn() {
		t.Fatal("writer not torn after crossing limit")
	}
	if _, err := tw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("post-tear write succeeded")
	}
	if got := buf.String(); got != "0123456789" {
		t.Fatalf("wrote %q through a 10-byte tear", got)
	}
}

func TestFlakyWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := &FlakyWriter{W: &buf, Failures: 2}
	for i := 0; i < 2; i++ {
		if _, err := fw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d should fail", i+1)
		}
	}
	if n, err := fw.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("healed write: n=%d err=%v", n, err)
	}
	if buf.String() != "ok" || fw.Attempts() != 3 {
		t.Fatalf("buf=%q attempts=%d", buf.String(), fw.Attempts())
	}
}

func TestFileMutilators(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(path, 5); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "hello" {
		t.Fatalf("truncated to %q", b)
	}
	if err := FlipBit(path, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if b[0] != 'h'^1 {
		t.Fatalf("bit not flipped: %q", b)
	}
}
