package faultinject

import (
	"errors"
	"io"
	"os"
	"time"
)

// ErrInjected is the sentinel failure returned by the faulty writers.
var ErrInjected = errors.New("faultinject: injected I/O failure")

// TornWriter models a torn write: it passes bytes through until Limit is
// reached, silently truncating the write that crosses the limit and
// failing every write after it — the observable behavior of a crash or
// power loss mid-write. A journal written through a TornWriter ends with a
// partial record, which the loader's CRC/truncation recovery must absorb.
type TornWriter struct {
	W       io.Writer
	Limit   int // total bytes allowed through
	written int
	torn    bool
}

// Write implements io.Writer with the tearing behavior described above.
func (t *TornWriter) Write(p []byte) (int, error) {
	if t.torn {
		return 0, ErrInjected
	}
	remain := t.Limit - t.written
	if len(p) <= remain {
		n, err := t.W.Write(p)
		t.written += n
		return n, err
	}
	t.torn = true
	if remain > 0 {
		n, err := t.W.Write(p[:remain])
		t.written += n
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return 0, ErrInjected
}

// Torn reports whether the tear point has been reached.
func (t *TornWriter) Torn() bool { return t.torn }

// FlakyWriter fails transiently: the first Failures writes return
// ErrInjected without writing anything, then the writer heals. Retry loops
// (the polyserve client, the journal writer) must survive this.
type FlakyWriter struct {
	W        io.Writer
	Failures int
	attempts int
}

// Write implements io.Writer, failing the first Failures calls.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	f.attempts++
	if f.attempts <= f.Failures {
		return 0, ErrInjected
	}
	return f.W.Write(p)
}

// Attempts returns how many writes were attempted (including failed ones).
func (f *FlakyWriter) Attempts() int { return f.attempts }

// SlowWriter delays every write by Delay, modeling a stalled disk or a
// saturated volume. It never fails; it exists to shake out timeout and
// drain-deadline handling.
type SlowWriter struct {
	W     io.Writer
	Delay time.Duration
}

// Write implements io.Writer with the configured per-call delay.
func (s *SlowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.W.Write(p)
}

// TruncateFile chops the file to n bytes, simulating the on-disk result of
// a torn write discovered after restart.
func TruncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}

// FlipBit flips one bit of the byte at offset in the file, simulating
// at-rest corruption that a per-record CRC must catch.
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], offset)
	return err
}
