// Package faultinject is the deterministic, seeded chaos layer for the
// PolyPath simulator and its serving stack. It drives two fault surfaces:
//
//   - Micro-architectural faults: the pipeline's build-tag-free hooks
//     (pipeline.SetFaultHook / pipeline.InjectFault) flip bits in rename
//     structures, drop wakeup broadcasts, desynchronize the free list, and
//     corrupt CTX tags. Under per-cycle auditing every injected fault
//     surfaces as a typed *pipeline.MachineCheckError.
//
//   - I/O faults: writer wrappers and file mutilators that model torn
//     writes, transient write failures and stalled disks, used to harden
//     the polyserve drain journal's CRC + truncation recovery.
//
// Everything is seeded: the same seed produces the same fault at the same
// cycle (or byte offset), so every chaos-test failure replays exactly.
package faultinject

import (
	"math/rand"

	"repro/internal/pipeline"
)

// Plan describes one scheduled micro-architectural fault.
type Plan struct {
	Kind pipeline.Fault
	// AfterCycle is the first cycle at which injection is attempted; the
	// injector retries every cycle until a victim in the right state exists.
	AfterCycle uint64
	// Arg seeds victim selection inside the pipeline's injection primitive.
	Arg uint64
}

// Injector arms one planned fault on a machine and records whether it
// landed.
type Injector struct {
	plan     Plan
	injected bool
}

// NewInjector derives a fault plan from seed: the fault kind, the cycle
// window and the victim-selection argument are all pseudo-random but fully
// determined by the seed.
func NewInjector(seed int64) *Injector {
	rng := rand.New(rand.NewSource(seed))
	kinds := []pipeline.Fault{
		pipeline.FaultRenameBitFlip,
		pipeline.FaultRenameMapFlip,
		pipeline.FaultDropWakeup,
		pipeline.FaultFreeListFlip,
		pipeline.FaultCtxTagFlip,
	}
	return &Injector{plan: Plan{
		Kind:       kinds[rng.Intn(len(kinds))],
		AfterCycle: uint64(20 + rng.Intn(200)),
		Arg:        rng.Uint64(),
	}}
}

// NewPlannedInjector arms an explicit plan (for table-driven chaos tests).
func NewPlannedInjector(p Plan) *Injector { return &Injector{plan: p} }

// Plan returns the armed fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Arm installs the injector's per-cycle hook on m. From AfterCycle on, the
// fault is attempted every cycle (victim selection varies with the cycle
// number, deterministically): a landed fault is normally detected the same
// cycle under per-cycle auditing, but a victim can be squashed between
// injection and the end-of-cycle sweep — a benign landing — so the
// injector keeps firing until the machine check stops the run.
func (in *Injector) Arm(m *pipeline.Machine) {
	m.SetFaultHook(func(cycle uint64) {
		if cycle >= in.plan.AfterCycle {
			if m.InjectFault(in.plan.Kind, in.plan.Arg+cycle) {
				in.injected = true
			}
		}
	})
}

// Injected reports whether the planned fault actually landed.
func (in *Injector) Injected() bool { return in.injected }
