package isa

import (
	"fmt"
	"strings"
)

// Disasm renders a single instruction as assembly-like text.
func Disasm(in Inst) string {
	switch {
	case in.Op == Nop || in.Op == Halt:
		return in.Op.String()
	case in.Op == Li:
		return fmt.Sprintf("li    r%d, %d", in.Dst, in.Imm)
	case in.Op == Load:
		return fmt.Sprintf("load  r%d, %d(r%d)", in.Dst, in.Imm, in.Src1)
	case in.Op == Store:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Src2, in.Imm, in.Src1)
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%-5s r%d, r%d, @%d", in.Op, in.Src1, in.Src2, in.Target)
	case in.Op == Jmp:
		return fmt.Sprintf("jmp   @%d", in.Target)
	case in.Op == Jri:
		return fmt.Sprintf("jri   (r%d)", in.Src1)
	case in.Op == Call:
		return fmt.Sprintf("call  r%d, @%d", in.Dst, in.Target)
	case in.Op == Ret:
		return fmt.Sprintf("ret   (r%d)", in.Src1)
	case in.Op.ReadsSrc2():
		return fmt.Sprintf("%-5s r%d, r%d, r%d", in.Op, in.Dst, in.Src1, in.Src2)
	default:
		return fmt.Sprintf("%-5s r%d, r%d, %d", in.Op, in.Dst, in.Src1, in.Imm)
	}
}

// DisasmProgram renders the whole program, one instruction per line with
// its PC, suitable for debugging generated workloads.
func DisasmProgram(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %q: %d instructions, %d memory words\n", p.Name, len(p.Code), p.MemWords)
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%6d: %s\n", pc, Disasm(in))
	}
	return b.String()
}
