package isa

// FUClass identifies which functional unit class an operation needs. The
// split mirrors the paper's machine model (Sec. 4.2), which is taken from
// the Alpha AXP-21164: two integer pipes with slightly different
// capabilities, separate FP add and FP multiply pipes, and D-cache ports.
type FUClass uint8

const (
	// ClassIntEither operations may issue to an IntType0 or IntType1 unit
	// (simple add/sub/logical ops, as on the 21164's E0/E1 pipes).
	ClassIntEither FUClass = iota
	// ClassIntType0 operations (shifts, multiply) only issue to IntType0.
	ClassIntType0
	// ClassIntType1 operations (conditional branches, jumps) only issue to
	// IntType1.
	ClassIntType1
	// ClassMem operations (loads, stores) need a D-cache memory port.
	ClassMem
	// ClassFPAdd operations need the FP adder.
	ClassFPAdd
	// ClassFPMul operations need the FP multiplier.
	ClassFPMul
	// ClassNone operations (nop, halt) need no functional unit but still
	// occupy a window slot until commit.
	ClassNone

	// NumFUClasses is the number of distinct functional unit classes.
	NumFUClasses = int(ClassNone) + 1
)

var classNames = [NumFUClasses]string{
	ClassIntEither: "int-either",
	ClassIntType0:  "int-type0",
	ClassIntType1:  "int-type1",
	ClassMem:       "mem",
	ClassFPAdd:     "fp-add",
	ClassFPMul:     "fp-mul",
	ClassNone:      "none",
}

// String returns a human-readable class name.
func (c FUClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "fu-class(?)"
}

// Class returns the functional unit class required by op.
func (op Op) Class() FUClass {
	switch op {
	case Add, Sub, And, Or, Xor, Slt, Addi, Andi, Ori, Xori, Slti, Li:
		return ClassIntEither
	case Shl, Shr, Shli, Shri, Mul:
		return ClassIntType0
	case Beq, Bne, Blt, Bge, Jmp, Jri, Call, Ret:
		return ClassIntType1
	case Load, Store:
		return ClassMem
	case FAdd:
		return ClassFPAdd
	case FMul:
		return ClassFPMul
	default:
		return ClassNone
	}
}

// Latency returns the execution latency of op in cycles, following the
// AXP-21164-derived latencies of the paper's model: simple integer ops take
// 1 cycle, integer multiply 8, FP operations 4, and loads 2 (1 cycle address
// computation + 1 cycle cache access). A store's latency covers address and
// data capture into the store buffer; its memory write happens at commit.
func (op Op) Latency() int {
	switch op {
	case Mul:
		return 8
	case FAdd, FMul:
		return 4
	case Load:
		return 2
	default:
		return 1
	}
}
