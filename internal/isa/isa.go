// Package isa defines the small RISC-like instruction set executed by the
// PolyPath simulator, together with a functional interpreter that serves as
// the architectural oracle for execution-driven simulation.
//
// The ISA is deliberately minimal but complete enough to express the
// synthetic SPECint95-like workloads used in the paper's evaluation:
// integer ALU operations (split into the two Alpha-21164-style integer
// classes), integer multiply, floating point add/multiply, loads, stores,
// conditional branches, direct jumps, and Halt.
//
// Programs use 32 integer registers; register 0 is hard-wired to zero.
// Memory is word addressed (64-bit words) and all effective addresses are
// masked to the program's memory size, so wrong-path execution with garbage
// register values can never fault — exactly the property an execution-driven
// micro-architecture simulator needs.
package isa

import "fmt"

// NumRegs is the number of logical integer registers. Register 0 reads as
// zero and writes to it are discarded.
const NumRegs = 32

// Reg names a logical register.
type Reg uint8

// Op is an operation code.
type Op uint8

// Operation codes.
const (
	Nop Op = iota
	Halt

	// Integer ALU, register-register.
	Add
	Sub
	And
	Or
	Xor
	Shl // shift left by (src2 & 63)
	Shr // logical shift right by (src2 & 63)
	Slt // set if less than (signed)
	Mul // integer multiply (long latency)

	// Integer ALU, register-immediate.
	Addi
	Andi
	Ori
	Xori
	Slti
	Shli
	Shri
	Li // load immediate: dst = imm

	// Memory. Effective address = (reg[src1] + imm) & (memWords-1).
	Load  // dst = mem[ea]
	Store // mem[ea] = reg[src2]

	// Conditional branches: if cond(reg[src1], reg[src2]) jump to Target.
	Beq
	Bne
	Blt // signed less-than
	Bge // signed greater-or-equal

	// Direct control transfer.
	Jmp // unconditional jump to Target
	// Indirect control transfer: PC = reg[src1] mod len(code). Real code
	// uses this for switch tables and function-pointer dispatch; targets
	// are predicted with a BTB in the pipeline.
	Jri
	// Call: reg[dst] = pc+1 (the link), PC = Target. Direct call; the
	// pipeline pushes the return address onto the return-address stack.
	Call
	// Ret: PC = reg[src1] mod len(code). Same semantics as Jri, but the
	// pipeline predicts the target with the return-address stack.
	Ret

	// Floating point (operates on the raw register bits as float64).
	FAdd
	FMul

	numOps // sentinel
)

// Inst is a single decoded instruction. Programs are slices of Inst and the
// program counter is simply an index into that slice. Branch and jump
// targets are absolute instruction indices.
type Inst struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int32
}

// Program is a complete executable: code, the initial contents of data
// memory, and the memory size in 64-bit words (must be a power of two).
type Program struct {
	Name     string
	Code     []Inst
	DataInit []int64 // copied into the low words of memory at reset
	MemWords int     // power of two; total memory size in words
}

// Validate checks structural invariants of the program: a power-of-two
// memory that covers DataInit, in-range branch targets, in-range register
// numbers, and termination via at least one Halt.
func (p *Program) Validate() error {
	if p.MemWords <= 0 || p.MemWords&(p.MemWords-1) != 0 {
		return fmt.Errorf("isa: program %q: MemWords %d is not a positive power of two", p.Name, p.MemWords)
	}
	if len(p.DataInit) > p.MemWords {
		return fmt.Errorf("isa: program %q: DataInit (%d words) exceeds MemWords (%d)", p.Name, len(p.DataInit), p.MemWords)
	}
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q: empty code", p.Name)
	}
	haltSeen := false
	for pc, in := range p.Code {
		if in.Op >= numOps {
			return fmt.Errorf("isa: program %q: pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
			return fmt.Errorf("isa: program %q: pc %d: register out of range", p.Name, pc)
		}
		if in.Op.IsControl() && !in.Op.IsIndirect() {
			if int(in.Target) < 0 || int(in.Target) >= len(p.Code) {
				return fmt.Errorf("isa: program %q: pc %d: target %d out of range", p.Name, pc, in.Target)
			}
			// A conditional branch whose target is its own fall-through
			// would make "taken" unobservable; forbid it.
			if in.Op.IsCondBranch() && int(in.Target) == pc+1 {
				return fmt.Errorf("isa: program %q: pc %d: conditional branch targets its fall-through", p.Name, pc)
			}
		}
		if in.Op == Halt {
			haltSeen = true
		}
	}
	if !haltSeen {
		return fmt.Errorf("isa: program %q: no Halt instruction", p.Name)
	}
	return nil
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsControl reports whether op changes control flow (conditional branch,
// direct jump, or indirect jump).
func (op Op) IsControl() bool {
	return op.IsCondBranch() || op == Jmp || op == Jri || op == Call || op == Ret
}

// IsIndirect reports whether op's target comes from a register (indirect
// jump or function return).
func (op Op) IsIndirect() bool { return op == Jri || op == Ret }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op == Load || op == Store }

// HasDest reports whether op writes a destination register.
func (op Op) HasDest() bool {
	switch op {
	case Nop, Halt, Store, Beq, Bne, Blt, Bge, Jmp, Jri, Ret:
		return false
	}
	return true
}

// ReadsSrc1 reports whether op reads Src1.
func (op Op) ReadsSrc1() bool {
	switch op {
	case Nop, Halt, Jmp, Li, Call:
		return false
	}
	return true
}

// ReadsSrc2 reports whether op reads Src2.
func (op Op) ReadsSrc2() bool {
	switch op {
	case Add, Sub, And, Or, Xor, Shl, Shr, Slt, Mul,
		Store, Beq, Bne, Blt, Bge, FAdd, FMul:
		return true
	}
	return false
}

var opNames = [numOps]string{
	Nop: "nop", Halt: "halt",
	Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Slt: "slt", Mul: "mul",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Slti: "slti", Shli: "shli", Shri: "shri", Li: "li",
	Load: "load", Store: "store",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Jmp: "jmp", Jri: "jri", Call: "call", Ret: "ret", FAdd: "fadd", FMul: "fmul",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if op < numOps {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}
