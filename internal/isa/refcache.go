package isa

import "sync"

// refcache.go caches reference functional runs per program. Every pipeline
// machine needs the in-order branch/jump record and the final architectural
// state of the workload it simulates (for the oracle predictor, the oracle
// confidence estimator, and end-of-run verification). The functional run is
// deterministic, so machines simulating the same program with the same
// instruction cap can share one run instead of re-interpreting the program
// per configuration — a large constant cost when a harness sweep builds
// dozens of machines over the same workloads.

// refRun is one cached reference execution.
type refRun struct {
	recs  []BranchRecord
	final *Interp
	err   error
}

// refCache holds the per-(program, maxInsts) reference runs. Keying on the
// Program pointer is correct because programs are immutable after
// construction: the same pointer always denotes the same code and data.
//
// The cache is bounded: harnesses regenerate workloads per experiment, so
// sharing only ever pays off among machines built from the same Program
// value, and old entries can never be requested again once their program is
// unreachable. Clearing wholesale past the cap keeps the steady-state
// footprint flat without per-entry bookkeeping.
var refCache struct {
	sync.Mutex
	runs map[*Program]map[uint64]*refRun
}

// refCacheMaxPrograms caps how many distinct programs the cache retains
// before it is cleared wholesale.
const refCacheMaxPrograms = 64

// TraceCached returns the reference run for p capped at maxInsts,
// functionally executing the program only on the first request for that
// (program, cap) pair. The returned slice and interpreter are shared:
// callers must treat them as read-only. The lock is held across the
// underlying Trace so concurrent first requests dedupe onto one run.
func TraceCached(p *Program, maxInsts uint64) ([]BranchRecord, *Interp, error) {
	refCache.Lock()
	defer refCache.Unlock()
	if refCache.runs == nil {
		refCache.runs = make(map[*Program]map[uint64]*refRun)
	}
	byCap := refCache.runs[p]
	if byCap == nil {
		if len(refCache.runs) >= refCacheMaxPrograms {
			refCache.runs = make(map[*Program]map[uint64]*refRun)
		}
		byCap = make(map[uint64]*refRun)
		refCache.runs[p] = byCap
	}
	if r, ok := byCap[maxInsts]; ok {
		return r.recs, r.final, r.err
	}
	recs, final, err := Trace(p, maxInsts)
	byCap[maxInsts] = &refRun{recs: recs, final: final, err: err}
	return recs, final, err
}
