package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a textual assembly program into a Program. The syntax is
// the same as Disasm's output, extended with labels and data directives,
// so programs round-trip through the disassembler:
//
//	; comments run to end of line
//	.name  myprog          ; program name (optional)
//	.data  1 2 3           ; append literal words to the data segment
//	.dataword label        ; append a word holding a label's address
//
//	start:
//	    li    r1, 100
//	loop:
//	    addi  r1, r1, -1
//	    load  r2, 4(r1)
//	    store r2, 8(r1)
//	    bne   r1, r0, loop ; branch targets: label or @absolute
//	    call  r28, fn
//	    jri   (r4)
//	    halt
//	fn:
//	    ret   (r28)
//
// Registers are written r0..r31. Memory is sized to the next power of two
// covering the data segment plus scratch headroom, as the workload builder
// does.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels: make(map[string]int),
		name:   "asm",
	}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", ln+1, err)
		}
	}
	return a.finish()
}

// MustAssemble is Assemble that panics on error, for tests and fixtures.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type asmFixup struct {
	pc    int
	label string
}

type asmDataFixup struct {
	idx   int
	label string
}

type assembler struct {
	name       string
	code       []Inst
	data       []int64
	labels     map[string]int
	fixups     []asmFixup
	dataFixups []asmDataFixup
}

func (a *assembler) line(raw string) error {
	s := raw
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}

	// Directives.
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}

	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !validLabel(label) {
			return fmt.Errorf("invalid label %q", label)
		}
		if _, dup := a.labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		a.labels[label] = len(a.code)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return a.instruction(s)
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return fmt.Errorf(".name takes one argument")
		}
		a.name = fields[1]
		return nil
	case ".data":
		for _, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return fmt.Errorf(".data word %q: %v", f, err)
			}
			a.data = append(a.data, v)
		}
		return nil
	case ".dataword":
		if len(fields) != 2 {
			return fmt.Errorf(".dataword takes one label")
		}
		a.dataFixups = append(a.dataFixups, asmDataFixup{idx: len(a.data), label: fields[1]})
		a.data = append(a.data, 0)
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

var asmOps = func() map[string]Op {
	m := make(map[string]Op)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) instruction(s string) error {
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := asmOps[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	in := Inst{Op: op}

	switch {
	case op == Nop || op == Halt:
		if len(args) != 0 {
			return fmt.Errorf("%s takes no operands", op)
		}
	case op == Li:
		if len(args) != 2 {
			return fmt.Errorf("li takes rDst, imm")
		}
		return a.emitWith(in, func(in *Inst) error {
			var err error
			if in.Dst, err = parseReg(args[0]); err != nil {
				return err
			}
			in.Imm, err = parseImm(args[1])
			return err
		})
	case op == Load:
		if len(args) != 2 {
			return fmt.Errorf("load takes rDst, imm(rBase)")
		}
		return a.emitWith(in, func(in *Inst) error {
			var err error
			if in.Dst, err = parseReg(args[0]); err != nil {
				return err
			}
			in.Imm, in.Src1, err = parseMem(args[1])
			return err
		})
	case op == Store:
		if len(args) != 2 {
			return fmt.Errorf("store takes rSrc, imm(rBase)")
		}
		return a.emitWith(in, func(in *Inst) error {
			var err error
			if in.Src2, err = parseReg(args[0]); err != nil {
				return err
			}
			in.Imm, in.Src1, err = parseMem(args[1])
			return err
		})
	case op.IsCondBranch():
		if len(args) != 3 {
			return fmt.Errorf("%s takes rA, rB, target", op)
		}
		var err error
		if in.Src1, err = parseReg(args[0]); err != nil {
			return err
		}
		if in.Src2, err = parseReg(args[1]); err != nil {
			return err
		}
		return a.emitTarget(in, args[2])
	case op == Jmp:
		if len(args) != 1 {
			return fmt.Errorf("jmp takes a target")
		}
		return a.emitTarget(in, args[0])
	case op == Call:
		if len(args) != 2 {
			return fmt.Errorf("call takes rLink, target")
		}
		var err error
		if in.Dst, err = parseReg(args[0]); err != nil {
			return err
		}
		return a.emitTarget(in, args[1])
	case op == Jri || op == Ret:
		if len(args) != 1 {
			return fmt.Errorf("%s takes (rTarget)", op)
		}
		return a.emitWith(in, func(in *Inst) error {
			var err error
			in.Src1, err = parseReg(strings.Trim(args[0], "()"))
			return err
		})
	default:
		// Three-operand ALU: dst, src1, (src2 | imm).
		if len(args) != 3 {
			return fmt.Errorf("%s takes rDst, rSrc1, (rSrc2|imm)", op)
		}
		return a.emitWith(in, func(in *Inst) error {
			var err error
			if in.Dst, err = parseReg(args[0]); err != nil {
				return err
			}
			if in.Src1, err = parseReg(args[1]); err != nil {
				return err
			}
			if op.ReadsSrc2() {
				in.Src2, err = parseReg(args[2])
				return err
			}
			in.Imm, err = parseImm(args[2])
			return err
		})
	}
	a.code = append(a.code, in)
	return nil
}

func (a *assembler) emitWith(in Inst, fill func(*Inst) error) error {
	if err := fill(&in); err != nil {
		return err
	}
	a.code = append(a.code, in)
	return nil
}

// emitTarget emits a control instruction whose target is either an
// @absolute index or a label resolved at finish time.
func (a *assembler) emitTarget(in Inst, arg string) error {
	if strings.HasPrefix(arg, "@") {
		t, err := strconv.Atoi(arg[1:])
		if err != nil {
			return fmt.Errorf("bad absolute target %q", arg)
		}
		in.Target = int32(t)
	} else {
		if !validLabel(arg) {
			return fmt.Errorf("bad target label %q", arg)
		}
		a.fixups = append(a.fixups, asmFixup{pc: len(a.code), label: arg})
	}
	a.code = append(a.code, in)
	return nil
}

func (a *assembler) finish() (*Program, error) {
	for _, f := range a.fixups {
		t, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		a.code[f.pc].Target = int32(t)
	}
	for _, f := range a.dataFixups {
		t, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined data label %q", f.label)
		}
		a.data[f.idx] = int64(t)
	}
	memWords := 1
	for memWords < len(a.data)+1024 {
		memWords <<= 1
	}
	p := &Program{Name: a.name, Code: a.code, DataInit: a.data, MemWords: memWords}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "imm(rBase)".
func parseMem(s string) (int64, Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	imm := int64(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

func validLabel(s string) bool {
	if s == "" || strings.HasPrefix(s, "@") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
