package progfuzz_test

import (
	"testing"

	"repro/internal/isa/progfuzz"
	"repro/internal/pipeline"
)

// commitCollector records the committed-PC stream of a simulation — the
// architectural program order the machine actually retired.
type commitCollector struct{ pcs []int32 }

func (c *commitCollector) Event(ev pipeline.TraceEvent) {
	if ev.Kind == pipeline.TraceCommit {
		c.pcs = append(c.pcs, int32(ev.PC))
	}
}

// fuzzMaxInsts cuts each simulated execution: random control flow loops
// freely (including forever), so every run is bounded.
const fuzzMaxInsts = 3000

// fuzzConfigs are the machine models every fuzz input runs under:
// the monopath baseline, the paper's PolyPath SEE machine, fully eager
// forking, and a deliberately tiny machine where structural pressure
// (window, checkpoints, CTX tags, physical registers) is maximal.
func fuzzConfigs() []struct {
	name string
	cfg  pipeline.Config
} {
	mono := pipeline.DefaultConfig()
	mono.Mode = pipeline.Monopath
	mono.Confidence.Kind = pipeline.ConfAlwaysHigh

	see := pipeline.DefaultConfig()

	eager := pipeline.DefaultConfig()
	eager.Confidence.Kind = pipeline.ConfAlwaysLow

	// A TAGE-predicted SEE machine: the tagged-table predictor exercises a
	// different predictor/pipeline interaction (allocation on mispredict,
	// history folding) under the same differential oracle. Tiny tables keep
	// aliasing pressure high at fuzz sizes.
	tage := pipeline.DefaultConfig()
	tage.Predictor = pipeline.PredictorSpec{
		Kind: pipeline.PredTage,
		Params: map[string]int{
			"base_bits": 6, "tables": 4, "idx_bits": 4, "tag_bits": 7,
			"min_hist": 2, "max_hist": 32,
		},
	}

	tiny := pipeline.DefaultConfig()
	tiny.Confidence.Kind = pipeline.ConfAlwaysLow
	tiny.WindowSize = 16
	tiny.PhysRegs = 52
	tiny.Checkpoints = 4
	tiny.CtxHistoryWidth = 2
	tiny.MaxPaths = 5
	tiny.FetchWidth = 4
	tiny.RenameWidth = 4
	tiny.CommitWidth = 4
	tiny.FrontEndStages = 2
	tiny.NumIntType0 = 1
	tiny.NumIntType1 = 1
	tiny.NumFPAdd = 1
	tiny.NumFPMul = 1
	tiny.NumMemPorts = 1

	out := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"monopath", mono},
		{"polypath-jrs", see},
		{"polypath-tage", tage},
		{"polypath-eager", eager},
		{"tiny-machine", tiny},
	}
	for i := range out {
		out[i].cfg.MaxInsts = fuzzMaxInsts
	}
	return out
}

// FuzzPipelineVsInterp is the differential oracle as a Go-native fuzz
// target: for any (seed, size) input, every machine model must commit
// exactly the reference interpreter's instruction stream — same PCs, same
// order, same cut — and retire with identical architectural state. A
// divergence is a simulator bug by construction (the interpreter defines
// the ISA), so any crasher this finds is a real correctness defect.
//
// Run the seed corpus as part of go test, or explore with:
//
//	go test -fuzz FuzzPipelineVsInterp -fuzztime 30s ./internal/isa/progfuzz
func FuzzPipelineVsInterp(f *testing.F) {
	// Seeds span the size range and a few known-interesting shapes (also
	// committed under testdata/fuzz/FuzzPipelineVsInterp).
	f.Add(int64(1), uint64(40))
	f.Add(int64(20260705), uint64(0))
	f.Add(int64(-7777), uint64(160))
	f.Add(int64(424242), uint64(97))
	// Trace-derived seeds: the btrace content digests of the ptrchase and
	// interp-dispatch reference traces (seed = ParseInt(digest[:15], 16),
	// n = the trace's record count), so the fuzzer starts from program
	// shapes the trace-synthesis pipeline actually produces.
	f.Add(int64(896085974340049954), uint64(17820))
	f.Add(int64(404520380316132651), uint64(28280))
	f.Fuzz(func(t *testing.T, seed int64, n uint64) {
		prog := progfuzz.FromSeed(seed, n)
		if err := prog.Validate(); err != nil {
			t.Fatalf("generator emitted an invalid program (seed=%d n=%d): %v", seed, n, err)
		}
		want, err := progfuzz.CommitStream(prog, fuzzMaxInsts)
		if err != nil {
			t.Fatalf("reference interpreter failed (seed=%d n=%d): %v", seed, n, err)
		}
		for _, c := range fuzzConfigs() {
			m, err := pipeline.New(prog, c.cfg)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			col := &commitCollector{}
			m.SetTracer(col)
			if err := m.Run(); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if err := m.VerifyArchState(); err != nil {
				t.Fatalf("%s: architectural divergence (seed=%d n=%d): %v", c.name, seed, n, err)
			}
			if len(col.pcs) != len(want) {
				t.Fatalf("%s: committed %d instructions, reference executed %d (seed=%d n=%d)",
					c.name, len(col.pcs), len(want), seed, n)
			}
			for i := range want {
				if col.pcs[i] != want[i] {
					t.Fatalf("%s: commit stream diverges at instruction %d: pipeline committed pc=%d, reference executed pc=%d (seed=%d n=%d)",
						c.name, i, col.pcs[i], want[i], seed, n)
				}
			}
		}
	})
}
