package progfuzz_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/progfuzz"
)

// TestGenerateIsValidAndDeterministic: every generated program passes
// Validate, ends in Halt, and is a pure function of the rng stream.
func TestGenerateIsValidAndDeterministic(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		seed := int64(trial * 7919)
		n := 20 + trial%120
		p1 := progfuzz.Generate(rand.New(rand.NewSource(seed)), n)
		if err := p1.Validate(); err != nil {
			t.Fatalf("seed=%d n=%d: invalid program: %v", seed, n, err)
		}
		if len(p1.Code) != n+1 {
			t.Fatalf("seed=%d n=%d: %d instructions, want %d", seed, n, len(p1.Code), n+1)
		}
		if p1.Code[n].Op != isa.Halt {
			t.Fatalf("seed=%d n=%d: program does not end in Halt", seed, n)
		}
		p2 := progfuzz.Generate(rand.New(rand.NewSource(seed)), n)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("seed=%d n=%d: generation is not deterministic", seed, n)
		}
	}
}

// TestFromSeedClampsSize: any fuzzer-chosen n maps into the documented
// program-size bounds.
func TestFromSeedClampsSize(t *testing.T) {
	for _, n := range []uint64{0, 1, 139, 1 << 40, ^uint64(0)} {
		p := progfuzz.FromSeed(1, n)
		code := len(p.Code) - 1 // minus the trailing Halt
		if code < progfuzz.MinProgLen || code > progfuzz.MaxProgLen {
			t.Fatalf("n=%d: program size %d outside [%d,%d]", n, code, progfuzz.MinProgLen, progfuzz.MaxProgLen)
		}
	}
}

// TestCommitStreamMatchesInterp: the oracle stream is exactly the
// interpreter's dynamic PC sequence, cut at maxInsts, Halt included.
func TestCommitStreamMatchesInterp(t *testing.T) {
	p := progfuzz.FromSeed(99, 60)
	pcs, err := progfuzz.CommitStream(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) == 0 || len(pcs) > 500 {
		t.Fatalf("stream length %d outside (0,500]", len(pcs))
	}
	it := isa.NewInterp(p)
	for i, pc := range pcs {
		if int32(it.PC) != pc {
			t.Fatalf("instruction %d: stream pc=%d, interpreter pc=%d", i, pc, it.PC)
		}
		if err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if it.Halted && pcs[len(pcs)-1] != int32(len(p.Code)-1) && p.Code[pcs[len(pcs)-1]].Op != isa.Halt {
		t.Fatal("halted execution's last committed instruction is not Halt")
	}
}
