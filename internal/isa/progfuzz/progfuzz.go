// Package progfuzz generates structurally valid random programs with
// chaotic control flow for differential testing: the pipeline simulator's
// committed state and commit stream are checked cell-for-cell against the
// internal/isa reference interpreter on the same program.
//
// The generator is shared by the pipeline's randomized equivalence test
// (internal/pipeline/random_test.go) and the Go-native fuzz target in
// this package (go test -fuzz FuzzPipelineVsInterp ./internal/isa/progfuzz),
// so both exercise the identical program distribution: arbitrary
// ALU/memory instructions, conditional branches, direct and indirect
// jumps, calls and returns, with targets anywhere in the program.
// Control flow may loop arbitrarily (including infinitely); simulations
// cut by MaxInsts and the architectural check compares the committed
// prefix against the interpreter at the same cut.
package progfuzz

import (
	"math/rand"

	"repro/internal/isa"
)

// Generate builds a structurally valid random program of n instructions
// (plus a trailing Halt) from the given source of randomness. It is a
// pure function of the rng stream: the same rng state and n always yield
// the same program.
func Generate(rng *rand.Rand, n int) *isa.Program {
	code := make([]isa.Inst, 0, n+1)
	reg := func() isa.Reg { return isa.Reg(rng.Intn(isa.NumRegs)) }
	for i := 0; i < n; i++ {
		var in isa.Inst
		switch rng.Intn(12) {
		case 0:
			in = isa.Inst{Op: isa.Li, Dst: reg(), Imm: int64(rng.Intn(2048) - 1024)}
		case 1:
			in = isa.Inst{Op: isa.Load, Dst: reg(), Src1: reg(), Imm: int64(rng.Intn(64))}
		case 2:
			in = isa.Inst{Op: isa.Store, Src1: reg(), Src2: reg(), Imm: int64(rng.Intn(64))}
		case 3, 4:
			ops := []isa.Op{isa.Beq, isa.Bne, isa.Blt, isa.Bge}
			target := rng.Intn(n)
			if target == i+1 { // fall-through target is invalid
				target = i
			}
			in = isa.Inst{Op: ops[rng.Intn(len(ops))], Src1: reg(), Src2: reg(), Target: int32(target)}
		case 5:
			in = isa.Inst{Op: isa.Jmp, Target: int32(rng.Intn(n))}
		case 9:
			in = isa.Inst{Op: isa.Jri, Src1: reg()}
		case 10:
			in = isa.Inst{Op: isa.Call, Dst: reg(), Target: int32(rng.Intn(n))}
		case 11:
			in = isa.Inst{Op: isa.Ret, Src1: reg()}
		case 6:
			in = isa.Inst{Op: isa.Mul, Dst: reg(), Src1: reg(), Src2: reg()}
		case 7:
			op := []isa.Op{isa.FAdd, isa.FMul}[rng.Intn(2)]
			in = isa.Inst{Op: op, Dst: reg(), Src1: reg(), Src2: reg()}
		case 8:
			in = isa.Inst{Op: isa.Nop}
		default:
			ops := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr, isa.Slt,
				isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Slti, isa.Shli, isa.Shri}
			op := ops[rng.Intn(len(ops))]
			in = isa.Inst{Op: op, Dst: reg(), Src1: reg(), Src2: reg(), Imm: int64(rng.Intn(256))}
		}
		code = append(code, in)
	}
	code = append(code, isa.Inst{Op: isa.Halt})
	data := make([]int64, 128)
	for i := range data {
		data[i] = rng.Int63n(1 << 20)
	}
	return &isa.Program{Name: "random", Code: code, DataInit: data, MemWords: 256}
}

// FromSeed derives a program from a (seed, n) pair, the shape the fuzz
// target's corpus uses. n is clamped into [MinProgLen, MaxProgLen] so any
// fuzzer-chosen value maps onto a sensible program size.
func FromSeed(seed int64, n uint64) *isa.Program {
	size := MinProgLen + int(n%uint64(MaxProgLen-MinProgLen+1))
	return Generate(rand.New(rand.NewSource(seed)), size)
}

// Program-size bounds for FromSeed: long enough to exercise nested
// divergence and CTX reuse, short enough that a single fuzz execution
// stays fast.
const (
	MinProgLen = 20
	MaxProgLen = 160
)

// CommitStream functionally executes p on the reference interpreter and
// returns the architectural PC stream — the PC of every instruction in
// program order, including the final Halt — cut at maxInsts. This is the
// oracle the pipeline's commit stream is differentially checked against.
func CommitStream(p *isa.Program, maxInsts uint64) ([]int32, error) {
	it := isa.NewInterp(p)
	pcs := make([]int32, 0, maxInsts)
	for !it.Halted && it.InstCount < maxInsts {
		pcs = append(pcs, int32(it.PC))
		if err := it.Step(); err != nil {
			return nil, err
		}
	}
	return pcs, nil
}
