package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is a dynamic instruction-mix summary of a functional execution.
type Profile struct {
	Total    uint64
	ByOp     map[Op]uint64
	ByClass  map[FUClass]uint64
	Branches uint64
	Taken    uint64
	Loads    uint64
	Stores   uint64
}

// ProfileProgram functionally executes p (bounded by maxInsts) and counts
// the dynamic instruction mix — the instrument behind workload mix
// calibration and the polysim -mix flag.
func ProfileProgram(p *Program, maxInsts uint64) (*Profile, error) {
	it := NewInterp(p)
	prof := &Profile{
		ByOp:    make(map[Op]uint64),
		ByClass: make(map[FUClass]uint64),
	}
	for !it.Halted && it.InstCount < maxInsts {
		pc := it.PC
		in := p.Code[pc]
		if err := it.Step(); err != nil {
			return nil, err
		}
		prof.Total++
		prof.ByOp[in.Op]++
		prof.ByClass[in.Op.Class()]++
		switch {
		case in.Op.IsCondBranch():
			prof.Branches++
			if it.PC == int(in.Target) {
				prof.Taken++
			}
		case in.Op == Load:
			prof.Loads++
		case in.Op == Store:
			prof.Stores++
		}
	}
	return prof, nil
}

// Frac returns the dynamic fraction of instructions with opcode op.
func (p *Profile) Frac(op Op) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.ByOp[op]) / float64(p.Total)
}

// String renders the mix sorted by frequency.
func (p *Profile) String() string {
	type row struct {
		op Op
		n  uint64
	}
	rows := make([]row, 0, len(p.ByOp))
	for op, n := range p.ByOp {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic instructions: %d\n", p.Total)
	if p.Branches > 0 {
		fmt.Fprintf(&b, "cond branches: %d (%.1f%%, %.0f%% taken)\n",
			p.Branches, 100*float64(p.Branches)/float64(p.Total),
			100*float64(p.Taken)/float64(p.Branches))
	}
	fmt.Fprintf(&b, "loads: %.1f%%  stores: %.1f%%\n",
		100*float64(p.Loads)/float64(max64(p.Total, 1)),
		100*float64(p.Stores)/float64(max64(p.Total, 1)))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s %10d  %5.1f%%\n", r.op, r.n, 100*float64(r.n)/float64(p.Total))
	}
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
