package isa

import (
	"fmt"
	"math"
)

// EvalALU computes the result of a non-memory, non-control operation given
// its two source operand values and immediate. The pipeline's execution
// units call this as well, so functional and timing simulation can never
// disagree about data semantics.
func EvalALU(op Op, a, b, imm int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case Slt:
		if a < b {
			return 1
		}
		return 0
	case Mul:
		return a * b
	case Addi:
		return a + imm
	case Andi:
		return a & imm
	case Ori:
		return a | imm
	case Xori:
		return a ^ imm
	case Slti:
		if a < imm {
			return 1
		}
		return 0
	case Shli:
		return a << (uint64(imm) & 63)
	case Shri:
		return int64(uint64(a) >> (uint64(imm) & 63))
	case Li:
		return imm
	case FAdd:
		return int64(math.Float64bits(math.Float64frombits(uint64(a)) + math.Float64frombits(uint64(b))))
	case FMul:
		return int64(math.Float64bits(math.Float64frombits(uint64(a)) * math.Float64frombits(uint64(b))))
	default:
		return 0
	}
}

// EvalBranch computes the outcome of a conditional branch given its two
// source operand values.
func EvalBranch(op Op, a, b int64) bool {
	switch op {
	case Beq:
		return a == b
	case Bne:
		return a != b
	case Blt:
		return a < b
	case Bge:
		return a >= b
	default:
		return false
	}
}

// IndirectTarget maps a register value onto a valid instruction index for
// an indirect jump. The modulo keeps wrong-path garbage values in range,
// the same safety property EffAddr provides for memory.
func IndirectTarget(v int64, codeLen int) int {
	t := int(v % int64(codeLen))
	if t < 0 {
		t += codeLen
	}
	return t
}

// EffAddr computes the effective word address of a memory operation given
// the base register value, immediate, and memory size (a power of two).
func EffAddr(base, imm int64, memWords int) int {
	return int(uint64(base+imm) & uint64(memWords-1))
}

// Interp is a functional (architectural) interpreter for a Program. It is
// the oracle against which the pipeline simulator's committed state is
// checked, and the producer of the dynamic branch trace used by the oracle
// branch predictor and oracle confidence estimator.
type Interp struct {
	Prog      *Program
	Regs      [NumRegs]int64
	Mem       []int64
	PC        int
	Halted    bool
	InstCount uint64 // dynamic instructions executed (including Halt)
}

// NewInterp creates an interpreter with reset architectural state: zeroed
// registers, memory initialized from the program's DataInit, PC at 0.
func NewInterp(p *Program) *Interp {
	mem := make([]int64, p.MemWords)
	copy(mem, p.DataInit)
	return &Interp{Prog: p, Mem: mem}
}

// Step executes a single instruction. It returns an error if the machine
// has already halted or the PC is out of range (which Validate-passing
// programs cannot reach).
func (it *Interp) Step() error {
	if it.Halted {
		return fmt.Errorf("isa: step after halt (pc=%d)", it.PC)
	}
	if it.PC < 0 || it.PC >= len(it.Prog.Code) {
		return fmt.Errorf("isa: pc %d out of range", it.PC)
	}
	in := it.Prog.Code[it.PC]
	it.InstCount++
	next := it.PC + 1
	switch {
	case in.Op == Halt:
		it.Halted = true
	case in.Op == Nop:
		// nothing
	case in.Op == Load:
		ea := EffAddr(it.Regs[in.Src1], in.Imm, it.Prog.MemWords)
		it.writeReg(in.Dst, it.Mem[ea])
	case in.Op == Store:
		ea := EffAddr(it.Regs[in.Src1], in.Imm, it.Prog.MemWords)
		it.Mem[ea] = it.Regs[in.Src2]
	case in.Op.IsCondBranch():
		if EvalBranch(in.Op, it.Regs[in.Src1], it.Regs[in.Src2]) {
			next = int(in.Target)
		}
	case in.Op == Jmp:
		next = int(in.Target)
	case in.Op == Jri || in.Op == Ret:
		next = IndirectTarget(it.Regs[in.Src1], len(it.Prog.Code))
	case in.Op == Call:
		it.writeReg(in.Dst, int64(it.PC+1))
		next = int(in.Target)
	default:
		it.writeReg(in.Dst, EvalALU(in.Op, it.Regs[in.Src1], it.Regs[in.Src2], in.Imm))
	}
	it.PC = next
	return nil
}

func (it *Interp) writeReg(r Reg, v int64) {
	if r != 0 {
		it.Regs[r] = v
	}
}

// Run executes until Halt or until maxInsts instructions have executed.
// It returns an error on malformed execution; hitting maxInsts is not an
// error (check Halted to distinguish).
func (it *Interp) Run(maxInsts uint64) error {
	for !it.Halted && it.InstCount < maxInsts {
		if err := it.Step(); err != nil {
			return err
		}
	}
	return nil
}

// BranchRecord is one dynamic control-flow decision on the correct
// architectural path: a conditional branch outcome, or (Indirect set) an
// indirect jump's resolved target.
type BranchRecord struct {
	PC       int32
	Taken    bool
	Indirect bool
	Target   int32 // resolved target for indirect jumps
}

// Trace functionally executes p (up to maxInsts dynamic instructions) and
// returns the in-order record of every conditional branch outcome and
// indirect jump target, along with the final interpreter state. This is
// the substrate for the paper's "oracle" branch predictor and "oracle"
// (perfect) confidence estimator.
func Trace(p *Program, maxInsts uint64) ([]BranchRecord, *Interp, error) {
	var recs []BranchRecord
	it, err := TraceStream(p, maxInsts, func(r BranchRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return recs, it, nil
}

// TraceStream is Trace without the in-memory record slice: fn is called for
// each control-flow decision in program order. A non-nil error from fn
// stops execution and is returned verbatim. This is the substrate for
// exporting arbitrarily long branch traces (btrace) in constant memory.
func TraceStream(p *Program, maxInsts uint64, fn func(BranchRecord) error) (*Interp, error) {
	it := NewInterp(p)
	for !it.Halted && it.InstCount < maxInsts {
		pc := it.PC
		op := p.Code[pc].Op
		if err := it.Step(); err != nil {
			return nil, err
		}
		var rec BranchRecord
		switch {
		case op.IsCondBranch():
			rec = BranchRecord{PC: int32(pc), Taken: it.PC == int(p.Code[pc].Target)}
		case op == Jri || op == Ret:
			rec = BranchRecord{PC: int32(pc), Indirect: true, Target: int32(it.PC)}
		default:
			continue
		}
		if err := fn(rec); err != nil {
			return nil, err
		}
	}
	return it, nil
}
