package isa

import (
	"strings"
	"testing"
)

const asmFixture = `
; sum the first 8 data words, with a call and a switch-style indirect jump
.name  fixture
.data  1 2 3 4 5 6 7 8
.dataword fn

start:
    li    r1, 0          ; i
    li    r2, 8          ; n
    li    r3, 0          ; sum
loop:
    load  r4, 0(r1)
    add   r3, r3, r4
    addi  r1, r1, 1
    blt   r1, r2, loop
    call  r28, fn
    li    r5, 8          ; address of the .dataword cell
    load  r6, 0(r5)
    jri   (r6)           ; jumps to fn again
done:
    store r3, 16(r0)
    halt
fn:
    addi  r3, r3, 100
    beq   r3, r3, escape ; always taken
    nop
escape:
    bne   r28, r0, back  ; return only when linked (r28 != 0)
    jmp   done
back:
    li    r29, 0
    or    r29, r28, r0
    li    r28, 0
    ret   (r29)
`

func TestAssembleFixtureRuns(t *testing.T) {
	p, err := Assemble(asmFixture)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fixture" {
		t.Errorf("name = %q", p.Name)
	}
	it := NewInterp(p)
	if err := it.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !it.Halted {
		t.Fatal("fixture did not halt")
	}
	// sum 1..8 = 36; fn adds 100 twice (once via call, once via jri, the
	// second entering with r28==0 so it jumps straight to done).
	if got := it.Mem[16]; got != 236 {
		t.Errorf("mem[16] = %d, want 236", got)
	}
}

func TestAssembleDisasmRoundTrip(t *testing.T) {
	p, err := Assemble(asmFixture)
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble the disassembly (labels flattened to @absolute targets)
	// and compare instruction streams.
	var b strings.Builder
	for _, in := range p.Code {
		b.WriteString(Disasm(in))
		b.WriteByte('\n')
	}
	p2, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, b.String())
	}
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("round trip length %d != %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Errorf("instruction %d: %+v != %+v", i, p.Code[i], p2.Code[i])
		}
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	p, err := Assemble("start: li r1, 5\n halt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 || p.Code[0].Op != Li {
		t.Error("label-then-instruction on one line")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate r1, r2\nhalt"},
		{"bad register", "li rx, 5\nhalt"},
		{"register out of range", "li r32, 5\nhalt"},
		{"bad immediate", "li r1, five\nhalt"},
		{"undefined label", "jmp nowhere\nhalt"},
		{"undefined data label", ".dataword nowhere\nhalt"},
		{"duplicate label", "a:\na:\nhalt"},
		{"bad label", "9lives:\nhalt"},
		{"wrong operand count", "add r1, r2\nhalt"},
		{"bad memory operand", "load r1, r2\nhalt"},
		{"bad directive", ".bogus 1\nhalt"},
		{"bad data word", ".data x\nhalt"},
		{"branch to fallthrough", "beq r1, r2, next\nnext:\nnop\nhalt"},
		{"halt with operand", "halt r1\n"},
		{"no halt", "nop\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAssembleNumericBases(t *testing.T) {
	p, err := Assemble("li r1, 0x10\nli r2, -5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 16 || p.Code[1].Imm != -5 {
		t.Errorf("immediates: %d, %d", p.Code[0].Imm, p.Code[1].Imm)
	}
}

func TestAssembleMemOperandForms(t *testing.T) {
	p, err := Assemble("load r1, (r2)\nstore r3, -4(r5)\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 0 || p.Code[0].Src1 != 2 {
		t.Error("bare (reg) memory operand")
	}
	if p.Code[1].Imm != -4 || p.Code[1].Src1 != 5 || p.Code[1].Src2 != 3 {
		t.Error("negative displacement store")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustAssemble("bogus\n")
}
