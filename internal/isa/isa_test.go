package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
}

func TestOpClassAndLatencyDefined(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		c := op.Class()
		if int(c) >= NumFUClasses {
			t.Errorf("op %v: invalid class %v", op, c)
		}
		if op.Latency() < 1 {
			t.Errorf("op %v: latency %d < 1", op, op.Latency())
		}
	}
}

func TestOpPredicatesConsistent(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.IsCondBranch() && !op.IsControl() {
			t.Errorf("op %v: cond branch must be control", op)
		}
		if op.IsCondBranch() && op.HasDest() {
			t.Errorf("op %v: branches have no destination", op)
		}
		if op.IsMem() && op.Class() != ClassMem {
			t.Errorf("op %v: memory op must use mem class", op)
		}
	}
	if !Load.HasDest() || Store.HasDest() {
		t.Error("load writes a dest, store does not")
	}
	if !Store.ReadsSrc2() || !Store.ReadsSrc1() {
		t.Error("store reads base (src1) and data (src2)")
	}
	if Li.ReadsSrc1() {
		t.Error("li reads no sources")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, i int64
		want    int64
	}{
		{Add, 3, 4, 0, 7},
		{Sub, 3, 4, 0, -1},
		{And, 0b1100, 0b1010, 0, 0b1000},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{Shl, 1, 4, 0, 16},
		{Shl, 1, 64, 0, 1}, // shift amounts mask to 6 bits
		{Shr, -8, 1, 0, int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)},
		{Slt, -1, 0, 0, 1},
		{Slt, 1, 0, 0, 0},
		{Mul, 7, -3, 0, -21},
		{Addi, 5, 0, 10, 15},
		{Andi, 0xFF, 0, 0x0F, 0x0F},
		{Ori, 0x10, 0, 0x01, 0x11},
		{Xori, 0xFF, 0, 0xF0, 0x0F},
		{Slti, 3, 0, 4, 1},
		{Slti, 4, 0, 4, 0},
		{Shli, 3, 0, 2, 12},
		{Shri, 12, 0, 2, 3},
		{Li, 99, 99, -7, -7},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.i); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.i, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	if got := EvalALU(FAdd, bits(1.5), bits(2.25), 0); got != bits(3.75) {
		t.Errorf("fadd: got %x want %x", got, bits(3.75))
	}
	if got := EvalALU(FMul, bits(1.5), bits(4), 0); got != bits(6) {
		t.Errorf("fmul: got %x want %x", got, bits(6))
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{Beq, 4, 4, true}, {Beq, 4, 5, false},
		{Bne, 4, 4, false}, {Bne, 4, 5, true},
		{Blt, -1, 0, true}, {Blt, 0, 0, false},
		{Bge, 0, 0, true}, {Bge, -1, 0, false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalBranch(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEffAddrMasksToMemSize(t *testing.T) {
	if got := EffAddr(10, 6, 16); got != 0 {
		t.Errorf("EffAddr(10,6,16) = %d, want 0", got)
	}
	if got := EffAddr(-1, 0, 16); got != 15 {
		t.Errorf("EffAddr(-1,0,16) = %d, want 15", got)
	}
	f := func(base, imm int64) bool {
		a := EffAddr(base, imm, 1024)
		return a >= 0 && a < 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// property: Slt and Blt agree; Sub sign and Blt agree for non-overflowing inputs.
func TestSltBltAgree(t *testing.T) {
	f := func(a, b int64) bool {
		return (EvalALU(Slt, a, b, 0) == 1) == EvalBranch(Blt, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testProgram() *Program {
	// Computes sum of data[0..7] into r3, stores it to mem[8], then counts
	// down a loop that doubles r5 three times.
	return &Program{
		Name:     "t",
		MemWords: 16,
		DataInit: []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Code: []Inst{
			0:  {Op: Li, Dst: 1, Imm: 0},            // i = 0
			1:  {Op: Li, Dst: 3, Imm: 0},            // sum = 0
			2:  {Op: Li, Dst: 4, Imm: 8},            // n = 8
			3:  {Op: Load, Dst: 2, Src1: 1, Imm: 0}, // v = mem[i]
			4:  {Op: Add, Dst: 3, Src1: 3, Src2: 2}, // sum += v
			5:  {Op: Addi, Dst: 1, Src1: 1, Imm: 1}, // i++
			6:  {Op: Blt, Src1: 1, Src2: 4, Target: 3},
			7:  {Op: Store, Src1: 0, Src2: 3, Imm: 8}, // mem[8] = sum
			8:  {Op: Li, Dst: 5, Imm: 1},
			9:  {Op: Li, Dst: 6, Imm: 3},
			10: {Op: Shli, Dst: 5, Src1: 5, Imm: 1},
			11: {Op: Addi, Dst: 6, Src1: 6, Imm: -1},
			12: {Op: Bne, Src1: 6, Src2: 0, Target: 10},
			13: {Op: Halt},
		},
	}
}

func TestValidateAcceptsGoodProgram(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	base := testProgram()
	tests := []struct {
		name   string
		mutate func(*Program)
	}{
		{"non-power-of-two memory", func(p *Program) { p.MemWords = 12 }},
		{"data exceeds memory", func(p *Program) { p.MemWords = 4 }},
		{"empty code", func(p *Program) { p.Code = nil }},
		{"target out of range", func(p *Program) { p.Code[6].Target = 100 }},
		{"branch to fall-through", func(p *Program) { p.Code[6].Target = 7 }},
		{"no halt", func(p *Program) { p.Code[13].Op = Nop }},
		{"bad opcode", func(p *Program) { p.Code[0].Op = numOps }},
		{"bad register", func(p *Program) { p.Code[0].Dst = NumRegs }},
	}
	for _, tc := range tests {
		p := *base
		p.Code = append([]Inst(nil), base.Code...)
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", tc.name)
		}
	}
}

func TestInterpRunsProgram(t *testing.T) {
	p := testProgram()
	it := NewInterp(p)
	if err := it.Run(1 << 20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !it.Halted {
		t.Fatal("program did not halt")
	}
	if it.Regs[3] != 36 {
		t.Errorf("sum r3 = %d, want 36", it.Regs[3])
	}
	if it.Mem[8] != 36 {
		t.Errorf("mem[8] = %d, want 36", it.Mem[8])
	}
	if it.Regs[5] != 8 {
		t.Errorf("r5 = %d, want 8", it.Regs[5])
	}
}

func TestInterpR0IsZero(t *testing.T) {
	p := &Program{
		Name: "r0", MemWords: 2,
		Code: []Inst{
			{Op: Li, Dst: 0, Imm: 42},
			{Op: Add, Dst: 1, Src1: 0, Src2: 0},
			{Op: Halt},
		},
	}
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[0] != 0 || it.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d, want 0, 0", it.Regs[0], it.Regs[1])
	}
}

func TestInterpStepAfterHaltErrors(t *testing.T) {
	p := &Program{Name: "h", MemWords: 2, Code: []Inst{{Op: Halt}}}
	it := NewInterp(p)
	if err := it.Step(); err != nil {
		t.Fatal(err)
	}
	if err := it.Step(); err == nil {
		t.Error("expected error stepping after halt")
	}
}

func TestInterpMaxInstsStopsWithoutHalt(t *testing.T) {
	p := &Program{
		Name: "loop", MemWords: 2,
		Code: []Inst{
			{Op: Jmp, Target: 0},
			{Op: Halt}, // unreachable, satisfies Validate
		},
	}
	it := NewInterp(p)
	if err := it.Run(1000); err != nil {
		t.Fatal(err)
	}
	if it.Halted {
		t.Error("infinite loop should not halt")
	}
	if it.InstCount != 1000 {
		t.Errorf("InstCount = %d, want 1000", it.InstCount)
	}
}

func TestTraceRecordsBranchOutcomes(t *testing.T) {
	p := testProgram()
	recs, final, err := Trace(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Halted {
		t.Fatal("trace did not reach halt")
	}
	// The first loop's branch (pc 6) executes 8 times: taken 7, not-taken 1.
	// The second loop's branch (pc 12) executes 3 times: taken 2, not-taken 1.
	var b6taken, b6total, b12taken, b12total int
	for _, r := range recs {
		switch r.PC {
		case 6:
			b6total++
			if r.Taken {
				b6taken++
			}
		case 12:
			b12total++
			if r.Taken {
				b12taken++
			}
		default:
			t.Errorf("unexpected branch pc %d", r.PC)
		}
	}
	if b6total != 8 || b6taken != 7 {
		t.Errorf("branch@6: %d/%d taken, want 7/8", b6taken, b6total)
	}
	if b12total != 3 || b12taken != 2 {
		t.Errorf("branch@12: %d/%d taken, want 2/3", b12taken, b12total)
	}
	// Records must be in program order per PC pass: final record not taken.
	if recs[len(recs)-1].Taken {
		t.Error("last branch record should be the loop exit (not taken)")
	}
}

func TestDisasmAllForms(t *testing.T) {
	p := testProgram()
	out := DisasmProgram(p)
	for _, want := range []string{"li", "load", "store", "add", "blt", "bne", "halt", "@3"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if got := Disasm(Inst{Op: Jmp, Target: 5}); got != "jmp   @5" {
		t.Errorf("jmp disasm = %q", got)
	}
	if got := Disasm(Inst{Op: Nop}); got != "nop" {
		t.Errorf("nop disasm = %q", got)
	}
}

func TestProfileProgram(t *testing.T) {
	p := testProgram()
	prof, err := ProfileProgram(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// The test program executes 8 loads (one per loop iteration).
	if prof.ByOp[Load] != 8 {
		t.Errorf("loads = %d, want 8", prof.ByOp[Load])
	}
	if prof.Branches != 11 { // 8 blt + 3 bne
		t.Errorf("branches = %d, want 11", prof.Branches)
	}
	if prof.Taken != 9 { // 7 + 2
		t.Errorf("taken = %d, want 9", prof.Taken)
	}
	if prof.Total == 0 || prof.Frac(Load) <= 0 {
		t.Error("profile totals")
	}
	out := prof.String()
	for _, want := range []string{"dynamic instructions", "cond branches", "load"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile string missing %q", want)
		}
	}
	if prof.ByClass[ClassMem] != prof.ByOp[Load]+prof.ByOp[Store] {
		t.Error("class accounting")
	}
}

func TestInterpIndirectJump(t *testing.T) {
	p := &Program{
		Name: "jri", MemWords: 2,
		Code: []Inst{
			{Op: Li, Dst: 1, Imm: 3},
			{Op: Jri, Src1: 1}, // jump to pc 3
			{Op: Li, Dst: 2, Imm: 99},
			{Op: Halt},
		},
	}
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[2] != 0 {
		t.Error("indirect jump should skip the li")
	}
	// Out-of-range values wrap modulo code length.
	if got := IndirectTarget(-1, 4); got != 3 {
		t.Errorf("IndirectTarget(-1,4) = %d, want 3", got)
	}
	if got := IndirectTarget(9, 4); got != 1 {
		t.Errorf("IndirectTarget(9,4) = %d, want 1", got)
	}
}

func TestInterpCallRet(t *testing.T) {
	p := &Program{
		Name: "call", MemWords: 2,
		Code: []Inst{
			0: {Op: Call, Dst: 1, Target: 3}, // r1 = 1, pc = 3
			1: {Op: Li, Dst: 3, Imm: 7},      // after return
			2: {Op: Halt},
			3: {Op: Li, Dst: 2, Imm: 5}, // function body
			4: {Op: Ret, Src1: 1},       // return to r1 = 1
		},
	}
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if !it.Halted || it.Regs[1] != 1 || it.Regs[2] != 5 || it.Regs[3] != 7 {
		t.Errorf("call/ret state: halted=%v r1=%d r2=%d r3=%d", it.Halted, it.Regs[1], it.Regs[2], it.Regs[3])
	}
}

func TestTraceRecordsIndirectTargets(t *testing.T) {
	p := &Program{
		Name: "tr", MemWords: 2,
		Code: []Inst{
			{Op: Li, Dst: 1, Imm: 2},
			{Op: Jri, Src1: 1},
			{Op: Halt},
		},
	}
	recs, _, err := Trace(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].Indirect || recs[0].Target != 2 || recs[0].PC != 1 {
		t.Errorf("indirect trace record: %+v", recs)
	}
}
