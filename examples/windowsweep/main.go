// Window sweep: a miniature Figure 10 — IPC as a function of the
// instruction window size for one benchmark under four machine models.
//
//	go run ./examples/windowsweep
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 200_000, "dynamic instructions to simulate")
	flag.Parse()
	bm, err := workload.ByName("compress", *insts)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		log.Fatal(err)
	}

	models := []struct {
		name string
		cfg  func() core.Config
	}{
		{"oracle", core.ConfigOracleBP},
		{"monopath", core.ConfigMonopath},
		{"SEE/oracleCE", core.ConfigSEEOracleCE},
		{"SEE/JRS", core.ConfigSEE},
	}
	fmt.Printf("%-8s", "window")
	for _, m := range models {
		fmt.Printf(" %12s", m.name)
	}
	fmt.Println()
	for _, w := range []int{32, 64, 128, 256, 512} {
		fmt.Printf("%-8d", w)
		for _, m := range models {
			cfg := m.cfg()
			cfg.WindowSize = w
			cfg.PhysRegs, cfg.Checkpoints = 0, 0 // re-derive for the window
			res, err := core.Run(prog, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.3f", res.IPC)
		}
		fmt.Println()
	}
	fmt.Println("\nAs in the paper's Fig. 10, most of the performance is reached by")
	fmt.Println("a moderate window, and SEE keeps a margin over monopath even for")
	fmt.Println("small windows.")
}
