// Confidence-estimator comparison: run the same benchmarks under SEE with
// different confidence estimators and compare PVN and IPC — the study
// behind the paper's choice of 1-bit JRS resetting counters and behind the
// m88ksim anomaly of Sec. 5.1.
//
//	go run ./examples/confidence
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 300_000, "dynamic instructions per benchmark")
	flag.Parse()
	estimators := []struct {
		name string
		cfg  func() core.Config
	}{
		{"monopath (no SEE)", core.ConfigMonopath},
		{"JRS 1-bit (paper)", core.ConfigSEE},
		{"JRS 4-bit", func() core.Config {
			c := core.ConfigSEE()
			c.Confidence.CtrBits = 4
			return c
		}},
		{"JRS 1-bit classic index", func() core.Config {
			c := core.ConfigSEE()
			c.Confidence.EnhancedIndex = false
			return c
		}},
		{"adaptive PVN monitor", core.ConfigSEEAdaptive},
		{"oracle CE", core.ConfigSEEOracleCE},
		{"always diverge", func() core.Config {
			c := core.ConfigSEE()
			c.Confidence.Kind = pipeline.ConfAlwaysLow
			return c
		}},
	}

	// go: chaotic branches (clustered misses, high PVN — SEE-friendly).
	// m88ksim: biased branches (isolated misses, low PVN — the anomaly).
	for _, name := range []string{"go", "m88ksim"} {
		bm, err := workload.ByName(name, *insts)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := workload.Generate(bm.Spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (paper Table 1 mispredict %.2f%%):\n", name, 100*bm.PaperMispredict)
		var monoIPC float64
		for _, e := range estimators {
			res, err := core.Run(prog, e.cfg())
			if err != nil {
				log.Fatal(err)
			}
			if e.name == "monopath (no SEE)" {
				monoIPC = res.IPC
			}
			fmt.Printf("  %-24s IPC %.3f (%+5.1f%%)  lowconf %5.1f%%  PVN %5.1f%%\n",
				e.name, res.IPC, 100*(res.IPC/monoIPC-1),
				100*float64(res.Stats.LowConf)/float64(max(res.Stats.CondBranches, 1)),
				100*res.Stats.PVN())
		}
		fmt.Println()
	}
	fmt.Println("Note how m88ksim's low PVN turns eager execution into a loss —")
	fmt.Println("the anomaly the paper analyzes in Sec. 5.1 — while the adaptive")
	fmt.Println("monitor detects it and falls back toward monopath behaviour.")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
