// Package examples_test smoke-tests every runnable example: each one is
// built and executed with a tiny -insts budget and must exit 0. This
// keeps the examples compiling AND running as the internal APIs evolve —
// a doc-rot guard, not a correctness oracle.
package examples_test

import (
	"os"
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running every example is not short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+dir, "-insts", "3000")
			cmd.Dir = ".." // module root, where go run resolves the package path
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}
