// Memory-latency extension: replace the paper's always-hit cache
// assumption with a small set-associative cache hierarchy and sweep the
// miss penalty, showing how SEE's advantage responds to a real memory
// system (it grows: misses lengthen branch resolution, so the avoided
// misprediction penalties are worth more).
//
//	go run ./examples/memlat
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 300_000, "dynamic instructions to simulate")
	flag.Parse()
	bm, err := workload.ByName("gcc", *insts)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := workload.Generate(bm.Spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("gcc stand-in, 8-way machine, 1k-word 2-way D-cache")
	fmt.Printf("%-18s %10s %10s %10s %10s\n", "miss penalty", "monopath", "SEE", "SEE gain", "d$ miss")
	for _, lat := range []int{0, 4, 10, 20, 40} {
		withCache := func(c core.Config) core.Config {
			if lat == 0 {
				return c // the paper's always-hit assumption
			}
			c.EnableDCache = true
			c.DCache = cache.Config{Sets: 64, Ways: 2, LineWords: 8}
			c.DCacheMissLatency = lat
			return c
		}
		mono, err := core.Run(prog, withCache(core.ConfigMonopath()))
		if err != nil {
			log.Fatal(err)
		}
		see, err := core.Run(prog, withCache(core.ConfigSEE()))
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d cycles", lat)
		if lat == 0 {
			label = "always hit"
		}
		fmt.Printf("%-18s %10.3f %10.3f %+9.1f%% %9.1f%%\n",
			label, mono.IPC, see.IPC, 100*(see.IPC/mono.IPC-1), 100*mono.Stats.DCacheMissRate())
	}
}
