// Dual-path study: restrict PolyPath to a single divergence (3 paths) as
// in Sec. 5.2 and compare against unrestricted SEE, reporting the path
// utilization histogram that explains why dual-path captures a large
// fraction of SEE's improvement.
//
//	go run ./examples/dualpath
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 300_000, "dynamic instructions per benchmark")
	flag.Parse()
	fmt.Println("benchmark   monopath     dual-path       SEE    dual/SEE-gain   avg-paths  <=3-paths")
	var sumFrac float64
	var counted int
	for _, name := range []string{"compress", "gcc", "perl", "go"} {
		bm, err := workload.ByName(name, *insts)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := workload.Generate(bm.Spec)
		if err != nil {
			log.Fatal(err)
		}
		mono, err := core.Run(prog, core.ConfigMonopath())
		if err != nil {
			log.Fatal(err)
		}
		dual, err := core.Run(prog, core.ConfigDualPath())
		if err != nil {
			log.Fatal(err)
		}
		see, err := core.Run(prog, core.ConfigSEE())
		if err != nil {
			log.Fatal(err)
		}
		frac := 0.0
		if see.IPC != mono.IPC {
			frac = (dual.IPC - mono.IPC) / (see.IPC - mono.IPC)
		}
		sumFrac += frac
		counted++
		fmt.Printf("%-10s %9.3f %12.3f %9.3f %14.0f%% %11.2f %9.0f%%\n",
			name, mono.IPC, dual.IPC, see.IPC, 100*frac,
			see.Stats.AvgPaths(), 100*see.Stats.PathsAtMost(3))
	}
	fmt.Printf("\ndual-path captures on average %.0f%% of SEE's improvement here\n", 100*sumFrac/float64(counted))
	fmt.Println("(the paper reports 66% for the real estimator, explained by SEE")
	fmt.Println("using 3 or fewer paths about three quarters of the time)")
}
