// Quickstart: build a small synthetic workload, run it on the monopath
// baseline and on the PolyPath SEE machine, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	insts := flag.Uint64("insts", 200_000, "dynamic instructions to simulate")
	flag.Parse()

	// A custom workload: a loop body with two hard-to-predict branches
	// (70% and 50% taken), one periodic branch, and one inner loop —
	// roughly "compress"-shaped control flow.
	spec := workload.Spec{
		Name:        "quickstart",
		Seed:        42,
		TargetInsts: *insts,
		Branches: []workload.BranchSpec{
			{Kind: workload.KindBernoulli, Bias: 0.7},
			{Kind: workload.KindBernoulli, Bias: 0.5},
			{Kind: workload.KindPattern, Period: 4},
			{Kind: workload.KindLoop, Trip: 5},
		},
		BlockLen:  8,
		Chains:    6,
		LoadFrac:  0.2,
		StoreFrac: 0.1,
		PredDepth: 6,
	}
	prog, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d static instructions, %d memory words\n\n",
		prog.Name, len(prog.Code), prog.MemWords)

	mono, err := core.Run(prog, core.ConfigMonopath())
	if err != nil {
		log.Fatal(err)
	}
	see, err := core.Run(prog, core.ConfigSEE())
	if err != nil {
		log.Fatal(err)
	}

	// Swapping the direction predictor is a config-spec change: any kind
	// registered in internal/bpred works here, with its parameters carried
	// as an opaque schema-checked map. This TAGE predictor occupies exactly
	// the same storage as the baseline gshare (see the Figure 9-TAGE
	// equal-area sweep).
	tcfg := core.ConfigSEE()
	tcfg.Predictor = pipeline.PredictorSpec{
		Kind:   pipeline.PredTage,
		Params: map[string]int(bpred.TageIsoParams(11)),
	}
	tage, err := core.Run(prog, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monopath:  IPC %.3f over %d cycles (mispredict %.1f%%)\n",
		mono.IPC, mono.Stats.Cycles, 100*mono.Stats.MispredictRate())
	fmt.Printf("SEE:       IPC %.3f over %d cycles (divergences %d, PVN %.0f%%, avg paths %.1f)\n",
		see.IPC, see.Stats.Cycles, see.Stats.Divergences, 100*see.Stats.PVN(), see.Stats.AvgPaths())
	fmt.Printf("SEE/TAGE:  IPC %.3f over %d cycles (mispredict %.1f%%, iso-storage with gshare)\n",
		tage.IPC, tage.Stats.Cycles, 100*tage.Stats.MispredictRate())
	fmt.Printf("\nselective eager execution speedup: %+.1f%%\n", 100*(see.IPC/mono.IPC-1))
	fmt.Println("(all runs' committed architectural state was verified against the functional interpreter)")
}
