GO ?= go
INSTS ?= 400000
BENCHTIME ?= 2s
FUZZTIME ?= 30s

.PHONY: all build test race vet fmt-check check bench bench-smoke benchreport experiments serve-smoke chaos-smoke trace-smoke fuzz-smoke cover-sched clean

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order, so hidden
# inter-test dependencies fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# check mirrors the CI gate: build, vet, formatting, tests.
check: build vet fmt-check test

# bench runs the measured benchmark suite (cycle loop, predictors,
# confidence, renamer, interpreter, full-simulator and harness sweeps).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -timeout 1800s

# bench-smoke runs every benchmark for a single iteration (the CI smoke).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# benchreport runs the suite and writes a BENCH_<date>.json snapshot with
# ns/op, allocs/op, simulated-instructions-per-second and the hmean-IPC
# correctness fingerprint. See cmd/benchreport.
benchreport:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME)

# experiments regenerates the paper's tables (Figures 8-12 + ablations).
experiments:
	$(GO) run ./cmd/experiments -exp all -insts $(INSTS)

# serve-smoke boots polyserve, runs an experiment through the HTTP API,
# diffs the result against cmd/experiments byte-for-byte, verifies the
# memoization cache, and drains the server with SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# trace-smoke exercises the observability subsystem end to end: polysim
# -trace for both see and dualpath, Chrome/Perfetto JSON validation
# (well-formed, monotonic per-process timestamps), the Konata export,
# and a byte-level diff proving tracing never perturbs the statistics.
# Set TRACE_OUT=<dir> to keep the exported traces (CI uploads them).
trace-smoke:
	./scripts/trace_smoke.sh

# chaos-smoke is the robustness gate: injected micro-architectural faults
# must surface as typed machine checks, audit-off output must match the
# committed golden table, polyserve must survive repeated worker panics
# (quarantining the offender), and a torn journal must recover on restart.
chaos-smoke:
	./scripts/chaos_smoke.sh

# fuzz-smoke explores the pipeline-vs-interpreter differential oracle
# for FUZZTIME beyond the committed seed corpus. Any crasher it finds is
# a real simulator correctness bug by construction.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineVsInterp$$' -fuzztime $(FUZZTIME) ./internal/isa/progfuzz

# cover-sched gates the deterministic scheduler: the engine every
# experiment's bit-for-bit reproducibility rests on must keep >= 85%
# statement coverage, measured under the race detector.
cover-sched:
	@$(GO) test -race -coverprofile=sched.coverprofile ./internal/sched
	@total=$$($(GO) tool cover -func=sched.coverprofile | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f sched.coverprofile; \
	echo "internal/sched statement coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { if (t+0 < 85) { print "FAIL: internal/sched coverage " t "% is below the 85% gate"; exit 1 } }'

clean:
	$(GO) clean ./...
