GO ?= go
INSTS ?= 400000
BENCHTIME ?= 2s
FUZZTIME ?= 30s

BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: all build test race vet fmt-check check bench bench-smoke benchreport bench-diff bench-scaling experiments serve-smoke chaos-smoke trace-smoke char-smoke soak-smoke adaptive-smoke fuzz-smoke cover-sched clean

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order, so hidden
# inter-test dependencies fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# check mirrors the CI gate: build, vet, formatting, tests.
check: build vet fmt-check test

# bench runs the measured benchmark suite (cycle loop, predictors,
# confidence, renamer, interpreter, full-simulator and harness sweeps)
# across every package, mirroring bench-smoke's coverage.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -timeout 1800s ./...

# bench-smoke runs every benchmark for a single iteration (the CI smoke).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# benchreport runs the suite and writes a BENCH_<date>.json snapshot with
# ns/op, allocs/op, simulated-instructions-per-second and the hmean-IPC
# correctness fingerprint. See cmd/benchreport.
benchreport:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME)

# bench-diff is the performance regression gate: rerun the hot-path
# benchmarks and fail when cycle-loop, renamer, or harness ns/op regress
# by more than 20% against the newest committed BENCH_*.json snapshot.
# A legitimate slowdown (e.g. a feature that buys accuracy with cycles)
# ships by refreshing the snapshot in the same PR — or, in CI, by
# applying the `bench-regression-ok` label, which skips this job.
bench-diff:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-diff: no committed BENCH_*.json baseline found"; exit 1; }
	@echo "bench-diff: comparing against $(BENCH_BASELINE)"
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME) \
		-bench 'CycleLoop|Renamer|Harness' -fingerprint-insts 0 \
		-baseline $(BENCH_BASELINE) -max-regress 1.20 -gate 'CycleLoop|Renamer|Harness' \
		-out bench-diff.json

# bench-scaling measures the sharded harness at j1/j2/j4/j8 and records
# host core count + GOMAXPROCS into bench-scaling.json. With >= 4 CPUs
# the j4/j1 speedup must reach 1.5x (the CI multi-core gate); on smaller
# hosts the gate reports and passes.
bench-scaling:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME) \
		-bench 'HarnessParallel' -fingerprint-insts 0 \
		-min-scaling 1.5 -out bench-scaling.json

# experiments regenerates the paper's tables (Figures 8-12 + ablations).
experiments:
	$(GO) run ./cmd/experiments -exp all -insts $(INSTS)

# serve-smoke boots polyserve, runs an experiment through the HTTP API,
# diffs the result against cmd/experiments byte-for-byte, verifies the
# memoization cache, and drains the server with SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# trace-smoke exercises the observability subsystem end to end: polysim
# -trace for both see and dualpath, Chrome/Perfetto JSON validation
# (well-formed, monotonic per-process timestamps), the Konata export,
# and a byte-level diff proving tracing never perturbs the statistics.
# Set TRACE_OUT=<dir> to keep the exported traces (CI uploads them).
trace-smoke:
	./scripts/trace_smoke.sh

# char-smoke gates the trace ingestion + characterization suite: the
# Figure 8 placement table must match the committed golden byte-for-byte
# (and be shard-count independent), every Table 1 stand-in must survive
# the emit-trace -> polychar -> synthesize round trip within +/-10%
# relative gshare misprediction, polysim -import-trace must simulate the
# synthesized stand-in, and corrupt traces must fail with typed
# diagnostics. Set CHAR_OUT=<dir> to keep the artifacts (CI uploads them
# on failure).
char-smoke:
	./scripts/char_smoke.sh

# adaptive-smoke gates the phase-aware adaptive policy family: the
# fig-adaptive table on the m88ksim-phased showcase (150k instructions)
# must be byte-identical to scripts/golden/adaptive_smoke_150k.txt and
# across shard counts, and the online bandit must strictly beat every
# static policy in its candidate set while holding >= 90% of the
# per-epoch oracle's IPC.
adaptive-smoke:
	./scripts/adaptive_smoke.sh

# soak-smoke is the distributed-mode gate: 1 coordinator + 3 race-built
# workers run a 32-cell sweep while workers and then the coordinator are
# SIGKILLed and restarted mid-sweep; the result must stay byte-identical
# to a single-node run with zero lost or duplicated cells (store
# cell-count + hash audit). Set SOAK_LOGS=<dir> to keep process logs.
soak-smoke:
	./scripts/soak_smoke.sh

# chaos-smoke is the robustness gate: injected micro-architectural faults
# must surface as typed machine checks, audit-off output must match the
# committed golden table, polyserve must survive repeated worker panics
# (quarantining the offender), and a torn journal must recover on restart.
chaos-smoke:
	./scripts/chaos_smoke.sh

# fuzz-smoke explores the pipeline-vs-interpreter differential oracle
# for FUZZTIME beyond the committed seed corpus. Any crasher it finds is
# a real simulator correctness bug by construction.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineVsInterp$$' -fuzztime $(FUZZTIME) ./internal/isa/progfuzz

# cover-sched gates the deterministic scheduler: the engine every
# experiment's bit-for-bit reproducibility rests on must keep >= 85%
# statement coverage, measured under the race detector.
cover-sched:
	@$(GO) test -race -coverprofile=sched.coverprofile ./internal/sched
	@total=$$($(GO) tool cover -func=sched.coverprofile | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f sched.coverprofile; \
	echo "internal/sched statement coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { if (t+0 < 85) { print "FAIL: internal/sched coverage " t "% is below the 85% gate"; exit 1 } }'

clean:
	$(GO) clean ./...
